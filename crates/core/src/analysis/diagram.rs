//! ASCII timing diagrams (Figures 1c and 1d of the paper).
//!
//! Renders the waveform of every signal of a simulated graph on a character
//! grid: `_` is low, `~` is high, `|` marks a transition column. Signals
//! appear in first-transition order; a ruler line marks every fifth time
//! unit.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::analysis::initiated::InitiatedSimulation;
use crate::analysis::sim::TimingSimulation;
use crate::event::Polarity;
use crate::graph::SignalGraph;

/// Rendering options for [`render`].
#[derive(Clone, Copy, Debug)]
pub struct DiagramOptions {
    /// Characters per time unit (default 2).
    pub chars_per_unit: f64,
    /// Total simulated time to draw; defaults to the simulation horizon.
    pub horizon: Option<f64>,
}

impl Default for DiagramOptions {
    fn default() -> Self {
        DiagramOptions {
            chars_per_unit: 2.0,
            horizon: None,
        }
    }
}

/// A signal's transition list: `(time, polarity)` sorted by time.
type Waveform = Vec<(f64, Polarity)>;

fn collect_waveforms(
    sg: &SignalGraph,
    mut time_of: impl FnMut(crate::event::EventId, u32) -> Option<f64>,
    max_instances: u32,
) -> BTreeMap<String, Waveform> {
    let mut map: BTreeMap<String, Waveform> = BTreeMap::new();
    for e in sg.events() {
        let label = sg.label(e);
        let Some(pol) = label.polarity() else {
            continue;
        };
        for i in 0..max_instances {
            match time_of(e, i) {
                Some(t) => map
                    .entry(label.signal().to_owned())
                    .or_default()
                    .push((t, pol)),
                None => break,
            }
        }
    }
    for wf in map.values_mut() {
        wf.sort_by(|a, b| a.0.total_cmp(&b.0));
    }
    map
}

fn render_waveforms(waveforms: &BTreeMap<String, Waveform>, horizon: f64, cpu: f64) -> String {
    let width = (horizon * cpu).ceil() as usize + 1;
    let name_w = waveforms.keys().map(String::len).max().unwrap_or(1).max(1);
    let mut out = String::new();

    // Ruler: a tick every 5 time units.
    let mut ruler = vec![b' '; width];
    let mut labels = vec![b' '; width + 8];
    let mut t = 0.0;
    while t <= horizon + 1e-9 {
        let col = (t * cpu).round() as usize;
        if col < width {
            ruler[col] = b'+';
            let s = format!("{}", t as i64);
            for (k, ch) in s.bytes().enumerate() {
                if col + k < labels.len() {
                    labels[col + k] = ch;
                }
            }
        }
        t += 5.0;
    }
    let _ = writeln!(
        out,
        "{:name_w$} {}",
        "t",
        String::from_utf8_lossy(&labels).trim_end()
    );
    let _ = writeln!(out, "{:name_w$} {}", "", String::from_utf8_lossy(&ruler));

    for (signal, wf) in waveforms {
        let initial_high = wf
            .first()
            .map(|&(_, pol)| pol == Polarity::Fall)
            .unwrap_or(false);
        let mut row = String::with_capacity(width);
        for col in 0..width {
            // Level after the last transition at or before this column.
            let mut level = initial_high;
            let mut at_transition = false;
            for &(tt, pol) in wf {
                let tcol = (tt * cpu).round() as usize;
                if tcol <= col {
                    level = pol.level_after();
                }
                if tcol == col {
                    at_transition = true;
                }
                if tcol > col {
                    break;
                }
            }
            row.push(if at_transition {
                '|'
            } else if level {
                '~'
            } else {
                '_'
            });
        }
        let _ = writeln!(out, "{signal:name_w$} {row}");
    }
    out
}

/// Renders the timing diagram of a full [`TimingSimulation`] (Figure 1c).
///
/// # Examples
///
/// ```
/// use tsg_core::SignalGraph;
/// use tsg_core::analysis::sim::TimingSimulation;
/// use tsg_core::analysis::diagram::{render, DiagramOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SignalGraph::builder();
/// let xp = b.event("x+");
/// let xm = b.event("x-");
/// b.arc(xp, xm, 3.0);
/// b.marked_arc(xm, xp, 2.0);
/// let sg = b.build()?;
/// let sim = TimingSimulation::run(&sg, 3);
/// let text = render(&sg, &sim, DiagramOptions::default());
/// assert!(text.contains('x'));
/// # Ok(())
/// # }
/// ```
pub fn render(sg: &SignalGraph, sim: &TimingSimulation, opts: DiagramOptions) -> String {
    let horizon = opts.horizon.unwrap_or_else(|| sim.horizon());
    let wf = collect_waveforms(sg, |e, i| sim.time(e, i), sim.periods());
    render_waveforms(&wf, horizon, opts.chars_per_unit)
}

/// Renders the diagram of an event-initiated simulation (Figure 1d):
/// everything concurrent with or preceding the initiating event is drawn
/// as already having happened at time 0.
pub fn render_initiated(
    sg: &SignalGraph,
    sim: &InitiatedSimulation,
    opts: DiagramOptions,
) -> String {
    let mut horizon: f64 = 0.0;
    for e in sg.events() {
        for i in 0..=sim.periods() {
            if let Some(t) = sim.time(e, i) {
                horizon = horizon.max(t);
            }
        }
    }
    let horizon = opts.horizon.unwrap_or(horizon);
    let wf = collect_waveforms(sg, |e, i| sim.time(e, i), sim.periods() + 1);
    render_waveforms(&wf, horizon, opts.chars_per_unit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignalGraph;

    fn oscillator() -> SignalGraph {
        let mut b = SignalGraph::builder();
        let xp = b.event("x+");
        let xm = b.event("x-");
        b.arc(xp, xm, 3.0);
        b.marked_arc(xm, xp, 2.0);
        b.build().unwrap()
    }

    #[test]
    fn waveform_alternates() {
        let sg = oscillator();
        let sim = TimingSimulation::run(&sg, 3);
        let text = render(&sg, &sim, DiagramOptions::default());
        let line = text
            .lines()
            .find(|l| l.starts_with('x'))
            .expect("signal row");
        // x rises at 0, falls at 3, rises at 5...
        assert!(line.contains('~'));
        assert!(line.contains('_'));
        assert!(line.contains('|'));
    }

    #[test]
    fn ruler_has_ticks() {
        let sg = oscillator();
        let sim = TimingSimulation::run(&sg, 3);
        let text = render(&sg, &sim, DiagramOptions::default());
        let ruler = text.lines().nth(1).unwrap();
        assert!(ruler.matches('+').count() >= 2);
    }

    #[test]
    fn horizon_override_truncates() {
        let sg = oscillator();
        let sim = TimingSimulation::run(&sg, 3);
        let text = render(
            &sg,
            &sim,
            DiagramOptions {
                chars_per_unit: 1.0,
                horizon: Some(4.0),
            },
        );
        let line = text.lines().find(|l| l.starts_with('x')).unwrap();
        assert_eq!(line.len(), "x ".len() + 5);
    }

    #[test]
    fn initiated_render_runs() {
        use crate::analysis::initiated::InitiatedSimulation;
        let sg = oscillator();
        let xp = sg.event_by_label("x+").unwrap();
        let sim = InitiatedSimulation::run(&sg, xp, 2).unwrap();
        let text = render_initiated(&sg, &sim, DiagramOptions::default());
        assert!(text.lines().count() >= 3);
    }

    #[test]
    fn bare_signals_are_skipped() {
        let mut b = SignalGraph::builder();
        let x = b.event("tick");
        b.marked_arc(x, x, 1.0);
        let sg = b.build().unwrap();
        let sim = TimingSimulation::run(&sg, 2);
        let text = render(&sg, &sim, DiagramOptions::default());
        // Only ruler lines; no waveform rows.
        assert_eq!(text.lines().count(), 2);
    }
}
