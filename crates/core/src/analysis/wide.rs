//! Lane-batched event-initiated simulations: all `b` border simulations
//! of one analysis in lockstep over a single structure pass.
//!
//! # Why lanes
//!
//! The cycle-time algorithm runs `b` event-initiated simulations that
//! each replay the *same* longest-path recurrence over the *same*
//! [`CyclicStructure`] — only the initiating event differs. Run one
//! after another (or one per thread), every simulation re-streams the
//! whole in-arc table through cache to feed a single scalar
//! `max(best, src + δ)`. A [`WideArena`] instead stores the matrices
//! **lane-major**:
//!
//! ```text
//! times[(p · n + e) · lanes + k]  =  t_{gk,0}(e_p)      (lane k = border event g_k)
//!
//!           ┌ lane 0 ┬ lane 1 ┬ … ┬ lane b-1 ┐   ← contiguous f64s per (p, e)
//! row p:    │  e = 0 cell      │  e = 1 cell │ …
//! ```
//!
//! so one traversal of the in-arc table feeds `b` contiguous lanes: per
//! in-arc the kernel loads `(src, δ, marked)` once and performs `b`
//! branchless `max(best, src + δ)` updates on adjacent memory — the
//! compiler's autovectorizer turns the inner loop into SIMD `max`/`add`
//! over full vectors. Arc-table traffic drops by a factor of `b` and the
//! arithmetic widens to the machine's vector width.
//!
//! # Why the results are bit-identical to the scalar kernel
//!
//! Per lane, the wide kernel performs *the exact comparison sequence* of
//! the scalar kernel ([`SimArena`]):
//!
//! * in-arcs are visited in the same order, so the arg-max tie-breaking
//!   (first strict improvement wins) is unchanged;
//! * `NEG_INFINITY` ("not reached") propagates correctly through the
//!   branchless form: delays are finite, so `NEG_INFINITY + δ` is
//!   `NEG_INFINITY`, and it loses every strict `>` comparison — exactly
//!   the scalar kernel's explicit skip;
//! * row 0 is special-cased scalar before the lockstep rows begin:
//!   marked arcs have no previous row (the scalar kernel skips them) and
//!   lane `k`'s origin cell is pinned to `t_{gk}(g_k) = 0` after the
//!   row's recurrence, in topological order, so later same-row reads see
//!   the pinned value just as the scalar kernel's pre-seeded cell.
//!
//! Identical candidate values in identical comparison order give
//! identical IEEE-754 results bit for bit — asserted across generator
//! families in `tests/wide.rs` and re-asserted by the `bench` binary
//! before any speedup is reported.
//!
//! The one thing the wide kernel does not track is parents: the
//! cycle-time algorithm needs backtracking only for the single winning
//! border event, which [`CycleTimeAnalysis::finish`] re-runs scalar with
//! `track_parents` — `O(b·m)` against the `O(b²·m)` main phase.
//!
//! [`CycleTimeAnalysis::finish`]: crate::analysis::CycleTimeAnalysis

use crate::analysis::initiated::{NotRepetitive, SimArena};
use crate::analysis::structure::CyclicStructure;
use crate::event::EventId;
use crate::graph::SignalGraph;

/// Reusable backing store — and result view — of a batch of lockstep
/// event-initiated simulations, one lane per initiating event.
///
/// # Examples
///
/// ```
/// use tsg_core::SignalGraph;
/// use tsg_core::analysis::wide::WideArena;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SignalGraph::builder();
/// let xp = b.event("x+");
/// let xm = b.event("x-");
/// b.arc(xp, xm, 3.0);
/// b.marked_arc(xm, xp, 2.0);
/// let sg = b.build()?;
///
/// let mut wide = WideArena::new();
/// wide.run(&sg, &[xp, xm], 2)?; // two lanes, one shared traversal
/// assert_eq!(wide.time(0, xp, 1), Some(5.0));
/// assert_eq!(wide.time(1, xm, 1), Some(5.0));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct WideArena {
    /// Flat lane-major time matrix: `times[(p * n + e) * lanes + k]`.
    times: Vec<f64>,
    /// Initiating event of each lane.
    origins: Vec<EventId>,
    /// Events per row of the last run.
    n: usize,
    /// Rows of the last run (`periods + 1`).
    p_total: usize,
    /// Periods of the last run.
    periods: u32,
}

impl Default for WideArena {
    fn default() -> Self {
        Self::new()
    }
}

impl WideArena {
    /// An empty arena; the first [`WideArena::run`] sizes it.
    pub fn new() -> Self {
        WideArena {
            times: Vec::new(),
            origins: Vec::new(),
            n: 0,
            p_total: 0,
            periods: 0,
        }
    }

    /// Runs one `g₀`-initiated simulation per origin, all lanes in
    /// lockstep over `periods` periods, reusing this arena's buffers.
    ///
    /// # Errors
    ///
    /// Returns [`NotRepetitive`] for the first non-repetitive origin.
    ///
    /// # Panics
    ///
    /// Panics if `periods == 0` or `origins` is empty.
    pub fn run(
        &mut self,
        sg: &SignalGraph,
        origins: &[EventId],
        periods: u32,
    ) -> Result<(), NotRepetitive> {
        let structure = CyclicStructure::new(sg);
        self.run_with(sg, &structure, origins, periods)
    }

    /// Shared-structure variant — the cycle-time algorithm builds one
    /// [`CyclicStructure`] and batches every border event over it.
    pub(crate) fn run_with(
        &mut self,
        sg: &SignalGraph,
        structure: &CyclicStructure,
        origins: &[EventId],
        periods: u32,
    ) -> Result<(), NotRepetitive> {
        assert!(periods >= 1, "simulation needs at least one period");
        assert!(!origins.is_empty(), "wide run needs at least one lane");
        for &g in origins {
            if !sg.is_repetitive(g) {
                return Err(NotRepetitive(g));
            }
        }
        let n = sg.event_count();
        let lanes = origins.len();
        let p_total = periods as usize + 1;
        self.n = n;
        self.p_total = p_total;
        self.periods = periods;
        self.origins.clear();
        self.origins.extend_from_slice(origins);

        // `resize` touches existing capacity only: after the first run
        // of this shape, no allocator traffic. No global fill: the
        // recurrence overwrites every repetitive event's cell in every
        // row, so only the columns of events *outside* the cyclic
        // structure (prefix/finite events — usually none) need their
        // NEG_INFINITY reset against stale cells of a previous run.
        let cells = p_total * n * lanes;
        self.times.resize(cells, f64::NEG_INFINITY);
        for e in sg.events() {
            if !sg.is_repetitive(e) {
                for p in 0..p_total {
                    let base = (p * n + e.index()) * lanes;
                    self.times[base..base + lanes].fill(f64::NEG_INFINITY);
                }
            }
        }

        self.compute_rows(structure, 0);
        Ok(())
    }

    /// Dirty-region restart: recomputes rows `start_row..` of the *same*
    /// batch this arena last ran — every lane, in one shared pass —
    /// assuming rows below `start_row` are still exact for the current
    /// delay assignment. The caller
    /// ([`AnalysisSession`](crate::analysis::session::AnalysisSession))
    /// guarantees no edited arc can influence any lane's cell below its
    /// per-lane `r0`, and passes the minimum of those: lanes whose own
    /// dirty region starts later have their intermediate rows recomputed
    /// to bit-identical values (the recurrence is a pure function of the
    /// rows below), so the resulting matrix equals a full re-run over
    /// the edited structure bit for bit.
    pub(crate) fn rerun_rows_from(&mut self, structure: &CyclicStructure, start_row: usize) {
        if start_row >= self.p_total {
            return; // the batch's earliest influence is beyond the horizon
        }
        self.compute_rows(structure, start_row);
    }

    /// The lockstep longest-path recurrence over rows
    /// `start_row..p_total`: dispatches to a lane-count-specialised
    /// instantiation for the common SIMD widths, so the per-arc lane
    /// loops compile with a constant trip count — fully unrolled, bounds
    /// checks folded — and fall back to the dynamic form otherwise.
    fn compute_rows(&mut self, structure: &CyclicStructure, start_row: usize) {
        match self.origins.len() {
            4 => self.compute_rows_impl::<4>(structure, start_row),
            8 => self.compute_rows_impl::<8>(structure, start_row),
            16 => self.compute_rows_impl::<16>(structure, start_row),
            32 => self.compute_rows_impl::<32>(structure, start_row),
            _ => self.compute_rows_impl::<0>(structure, start_row),
        }
    }

    /// One lane-count instantiation of the recurrence (`L == 0` is the
    /// dynamic-width fallback); row `start_row - 1` (when any) must hold
    /// valid values.
    ///
    /// Per event the row is split around the destination cell
    /// (`split_at_mut`), so the `lanes` accumulator IS the destination —
    /// no scratch buffer, no copy-back pass. Unmarked in-arcs always
    /// read a *different* event's cell (the unmarked subgraph is
    /// acyclic, so `src ≠ ev`), which lands in the left or right remnant
    /// of the split; marked in-arcs read the previous row.
    fn compute_rows_impl<const L: usize>(&mut self, structure: &CyclicStructure, start_row: usize) {
        let n = self.n;
        let p_total = self.p_total;
        let lanes = if L == 0 { self.origins.len() } else { L };
        let row_cells = n * lanes;
        let WideArena { times, origins, .. } = self;
        for p in start_row..p_total {
            let (before, current) = times.split_at_mut(p * row_cells);
            let row = &mut current[..row_cells];
            let prev: &[f64] = if p > 0 {
                &before[(p - 1) * row_cells..]
            } else {
                &[]
            };
            for &ev in &structure.order {
                let base = ev.index() * lanes;
                let (left, rest) = row.split_at_mut(base);
                let (dst, right) = rest.split_at_mut(lanes);
                let mut first = true;
                for ia in structure.in_arcs(ev) {
                    let sb = ia.src as usize * lanes;
                    let src = if ia.marked {
                        if p == 0 {
                            continue; // no previous row: token enables for free
                        }
                        &prev[sb..sb + lanes]
                    } else if sb < base {
                        &left[sb..sb + lanes]
                    } else {
                        &right[sb - base - lanes..][..lanes]
                    };
                    accumulate(dst, src, ia.delay, first);
                    first = false;
                }
                if first {
                    dst.fill(f64::NEG_INFINITY); // no usable in-arc
                }
                if p == 0 {
                    // Row 0: pin each lane's origin cell to 0, in
                    // topological order, so later same-row reads see it
                    // exactly as the scalar kernel's pre-seeded cell.
                    for (k, &g) in origins.iter().enumerate() {
                        if g == ev {
                            dst[k] = 0.0; // t_g(g) = 0 by definition
                        }
                    }
                }
            }
        }
    }

    /// Allocated capacity of the lane-major time buffer, in cells.
    ///
    /// A warm-pool worker asserts this stays constant across requests of
    /// the same shape, exactly like [`SimArena::capacity`].
    pub fn capacity(&self) -> usize {
        self.times.capacity()
    }

    /// Number of lanes of the last run.
    pub fn lanes(&self) -> usize {
        self.origins.len()
    }

    /// The initiating event of lane `k`.
    ///
    /// # Panics
    ///
    /// Panics when `k` is out of range.
    pub fn origin(&self, k: usize) -> EventId {
        self.origins[k]
    }

    /// Periods of the last run (instances `0..=periods` are available).
    pub fn periods(&self) -> u32 {
        self.periods
    }

    /// `t_{gk,0}(e_p)` of lane `k`, or `None` when `g_{k,0} ⇏ e_p` —
    /// the lane-indexed twin of [`SimArena::time`].
    pub fn time(&self, k: usize, e: EventId, instance: u32) -> Option<f64> {
        let p = instance as usize;
        if p >= self.p_total || k >= self.origins.len() {
            return None;
        }
        let t = self.times[(p * self.n + e.index()) * self.origins.len() + k];
        (t > f64::NEG_INFINITY).then_some(t)
    }

    /// All defined `δ_{gk,0}(g_{k,i})` of lane `k`, as `(i, t, δ)`.
    pub fn distance_series(&self, k: usize) -> Vec<(u32, f64, f64)> {
        let mut out = Vec::new();
        self.distance_series_into(k, &mut out);
        out
    }

    /// Allocation-reusing form of [`distance_series`](Self::distance_series):
    /// clears `out` and fills it in place, so a warm caller (an
    /// analysis session's per-border record) keeps one buffer per lane
    /// alive across re-runs.
    pub fn distance_series_into(&self, k: usize, out: &mut Vec<(u32, f64, f64)>) {
        out.clear();
        let g = self.origins[k];
        out.extend(
            (1..=self.periods).filter_map(|i| self.time(k, g, i).map(|t| (i, t, t / i as f64))),
        );
    }
}

/// The widened recurrence step: `dst[k] = max(dst[k], src[k] + δ)` for
/// every lane, branchless — the loop the autovectorizer turns into SIMD
/// `add`/`max` over contiguous lanes.
///
/// The event's `first` in-arc stores its candidates directly instead of
/// comparing against a freshly filled `NEG_INFINITY` accumulator — bit-
/// identical, because `max(NEG_INFINITY, cand)` is `cand` whether `cand`
/// is finite or `NEG_INFINITY` itself — which saves one full pass over
/// the lanes per event.
#[inline(always)]
fn accumulate(dst: &mut [f64], src: &[f64], delay: f64, first: bool) {
    if first {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = s + delay;
        }
        return;
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        let cand = s + delay;
        if cand > *d {
            *d = cand;
        }
    }
}

/// The reusable state of one full cycle-time analysis: the wide matrix
/// all `b` lockstep border simulations share, plus the scalar
/// [`SimArena`] the parent-tracked winner re-run uses.
///
/// [`CycleTimeAnalysis::run_in`](crate::analysis::CycleTimeAnalysis::run_in)
/// reuses one of these per worker/request the way the scalar engine
/// reuses a [`SimArena`]: after the first analysis of the largest shape,
/// repeated analyses never touch the allocator.
#[derive(Clone, Debug, Default)]
pub struct AnalysisArena {
    pub(crate) wide: WideArena,
    pub(crate) finish: SimArena,
    /// The shared evaluation structure, rebuilt in place per analysed
    /// graph (buffer-reusing; see [`CyclicStructure::rebuild`]).
    pub(crate) structure: CyclicStructure,
}

impl AnalysisArena {
    /// An empty arena pair; the first analysis sizes both.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocated capacities `(wide time cells, scalar time cells,
    /// scalar parent cells)` — the warm-pool zero-allocation assertions
    /// check all three stay constant across same-shape requests.
    pub fn capacity(&self) -> (usize, usize, usize) {
        let (t, p) = self.finish.capacity();
        (self.wide.capacity(), t, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignalGraph;

    fn figure2() -> SignalGraph {
        let mut b = SignalGraph::builder();
        let e = b.initial_event("e-");
        let f = b.finite_event("f-");
        let ap = b.event("a+");
        let bp = b.event("b+");
        let cp = b.event("c+");
        let am = b.event("a-");
        let bm = b.event("b-");
        let cm = b.event("c-");
        b.arc(e, f, 3.0);
        b.disengageable_arc(e, ap, 2.0);
        b.disengageable_arc(f, bp, 1.0);
        b.arc(ap, cp, 3.0);
        b.arc(bp, cp, 2.0);
        b.arc(cp, am, 2.0);
        b.arc(cp, bm, 1.0);
        b.arc(am, cm, 3.0);
        b.arc(bm, cm, 2.0);
        b.marked_arc(cm, ap, 2.0);
        b.marked_arc(cm, bp, 1.0);
        b.build().unwrap()
    }

    /// Every lane of a wide run must equal the scalar simulation of the
    /// same origin, cell for cell, bit for bit.
    fn assert_lanes_match_scalar(sg: &SignalGraph, wide: &WideArena, ctx: &str) {
        let mut scalar = SimArena::new();
        for k in 0..wide.lanes() {
            let g = wide.origin(k);
            scalar.run(sg, g, wide.periods(), false).unwrap();
            for e in sg.events() {
                for p in 0..=wide.periods() {
                    assert_eq!(
                        wide.time(k, e, p).map(f64::to_bits),
                        scalar.time(e, p).map(f64::to_bits),
                        "{ctx}: lane {k} ({}) e={} p={p}",
                        sg.label(g),
                        sg.label(e)
                    );
                }
            }
            assert_eq!(wide.distance_series(k), scalar.distance_series(), "{ctx}");
        }
    }

    #[test]
    fn lockstep_lanes_equal_scalar_simulations() {
        let sg = figure2();
        let borders = sg.border_events();
        assert_eq!(borders.len(), 2);
        let mut wide = WideArena::new();
        for periods in [1u32, 2, 3, 7] {
            wide.run(&sg, &borders, periods).unwrap();
            assert_lanes_match_scalar(&sg, &wide, &format!("periods={periods}"));
        }
    }

    #[test]
    fn single_lane_is_the_scalar_kernel() {
        let sg = figure2();
        let ap = sg.event_by_label("a+").unwrap();
        let mut wide = WideArena::new();
        wide.run(&sg, &[ap], 2).unwrap();
        assert_lanes_match_scalar(&sg, &wide, "single lane");
        assert_eq!(wide.time(0, ap, 1), Some(10.0));
    }

    #[test]
    fn arena_reuse_across_shapes_leaves_no_ghosts() {
        let big = {
            let mut b = SignalGraph::builder();
            let evs: Vec<_> = (0..12).map(|i| b.event(&format!("e{i}"))).collect();
            for w in evs.windows(2) {
                b.arc(w[0], w[1], 1.0);
            }
            b.marked_arc(evs[11], evs[0], 1.0);
            b.marked_arc(evs[5], evs[6], 0.5);
            b.build().unwrap()
        };
        let small = figure2();
        let mut wide = WideArena::new();
        wide.run(&big, &big.border_events(), 8).unwrap();
        assert_lanes_match_scalar(&big, &wide, "big");
        wide.run(&small, &small.border_events(), 2).unwrap();
        assert_lanes_match_scalar(&small, &wide, "small after big");
    }

    #[test]
    fn rerun_rows_from_matches_full_rerun() {
        // Edit a delay, resume from each candidate row whose cells the
        // edit cannot influence, and compare against a from-scratch wide
        // run of the edited graph.
        let mut sg = figure2();
        let borders = sg.border_events();
        let mut wide = WideArena::new();
        wide.run(&sg, &borders, 3).unwrap();

        // The c- -> a+ marked arc: ε(a+ -> c-) = 0, marked, so r0 = 1
        // for the a+ lane (and 1 for b+ via the same reasoning).
        let cm = sg.event_by_label("c-").unwrap();
        let ap = sg.event_by_label("a+").unwrap();
        let arc = sg.arc_between(cm, ap).unwrap();
        sg.set_delay(arc, 6.5).unwrap();
        let structure = CyclicStructure::new(&sg);
        wide.rerun_rows_from(&structure, 1);

        let mut fresh = WideArena::new();
        fresh.run(&sg, &borders, 3).unwrap();
        for k in 0..borders.len() {
            for e in sg.events() {
                for p in 0..=3 {
                    assert_eq!(
                        wide.time(k, e, p).map(f64::to_bits),
                        fresh.time(k, e, p).map(f64::to_bits),
                        "lane {k} e={} p={p}",
                        sg.label(e)
                    );
                }
            }
        }
        assert_lanes_match_scalar(&sg, &wide, "after resume");
    }

    #[test]
    fn rerun_beyond_horizon_is_a_noop() {
        let sg = figure2();
        let borders = sg.border_events();
        let mut wide = WideArena::new();
        wide.run(&sg, &borders, 2).unwrap();
        let before = wide.times.clone();
        let structure = CyclicStructure::new(&sg);
        wide.rerun_rows_from(&structure, 3);
        assert_eq!(wide.times, before);
    }

    #[test]
    fn non_repetitive_origin_rejected() {
        let sg = figure2();
        let e = sg.event_by_label("e-").unwrap();
        let ap = sg.event_by_label("a+").unwrap();
        let mut wide = WideArena::new();
        assert_eq!(wide.run(&sg, &[ap, e], 2).unwrap_err(), NotRepetitive(e));
    }

    #[test]
    fn distance_series_into_reuses_the_buffer() {
        let sg = figure2();
        let borders = sg.border_events();
        let mut wide = WideArena::new();
        wide.run(&sg, &borders, 2).unwrap();
        let mut buf = Vec::with_capacity(8);
        let cap = buf.capacity();
        for k in 0..wide.lanes() {
            wide.distance_series_into(k, &mut buf);
            assert_eq!(buf, wide.distance_series(k));
            assert_eq!(buf.capacity(), cap, "no reallocation within capacity");
        }
    }
}
