//! Lane-batched event-initiated simulations: all `b` border simulations
//! of one analysis — across all `s` delay scenarios — in lockstep over a
//! single structure pass.
//!
//! # Why lanes
//!
//! The cycle-time algorithm runs `b` event-initiated simulations that
//! each replay the *same* longest-path recurrence over the *same*
//! [`CyclicStructure`] — only the initiating event differs. Run one
//! after another (or one per thread), every simulation re-streams the
//! whole in-arc table through cache to feed a single scalar
//! `max(best, src + δ)`. A [`WideArena`] instead stores the matrices
//! **lane-major**:
//!
//! ```text
//! times[(p · n + e) · lanes + k]  =  t_{gk,0}(e_p)      (lane k = border event g_k)
//!
//!           ┌ lane 0 ┬ lane 1 ┬ … ┬ lane b-1 ┐   ← contiguous f64s per (p, e)
//! row p:    │  e = 0 cell      │  e = 1 cell │ …
//! ```
//!
//! so one traversal of the in-arc table feeds `b` contiguous lanes: per
//! in-arc the kernel loads `(src, δ, marked)` once and performs `b`
//! branchless `max(best, src + δ)` updates on adjacent memory. Arc-table
//! traffic drops by a factor of `b` and the arithmetic widens to the
//! machine's vector width.
//!
//! # Scenario lanes: `lanes = b × s`
//!
//! The same amortisation applies across *delay scenarios* — min/typ/max
//! corners or sampled per-arc variation assignments: only the δ of each
//! in-arc changes, never the traversal. [`WideArena::run_scenarios_with`]
//! generalises the lane dimension to every (border, scenario) pair,
//! scenario-major:
//!
//! ```text
//! times[(p · n + e) · (b · s) + lane]     lane = j · b + k
//!                                         (scenario j, border event g_k)
//!
//!           ┌── scenario 0 ──┬── scenario 1 ──┬ … ┬── scenario s-1 ──┐
//! (p, e):   │ k=0 … k=b-1    │ k=0 … k=b-1    │ … │ k=0 … k=b-1      │
//! ```
//!
//! Per-arc delays become per-lane δ *vectors*: one flat table
//! `deltas[slot · (b·s) + lane]` parallel to the in-arc entries, with
//! scenario `j`'s delay replicated over its `b` border lanes. The SIMD
//! kernels load the δ vector with the same width as the time lanes
//! (`first_v`/`fold_v`), so one lockstep pass sweeps all `b·s`
//! simulations; with an empty delta table the nominal scalar-δ path is
//! unchanged. Per lane the result is bit-identical to a scalar run on
//! the correspondingly reweighted graph: the candidates are the same
//! f64 products, folded in the same comparison order.
//!
//! # Explicit SIMD and runtime dispatch
//!
//! The portable lane loop is autovectorizer-friendly, but the x86-64
//! baseline only guarantees 128-bit SSE2 — a portable build leaves half
//! of an AVX2 machine's vector width on the table. [`KernelBackend`]
//! closes that gap with explicit `core::arch::x86_64` paths over the
//! contiguous lane dimension:
//!
//! | backend    | lane step | instructions                         | remainder lanes          |
//! |------------|-----------|--------------------------------------|--------------------------|
//! | `Avx2`     | 4 × f64   | `_mm256_add_pd` / `_mm256_max_pd`    | `_mm256_maskload_pd` / `_mm256_maskstore_pd` |
//! | `Sse2`     | 2 × f64   | `_mm_add_pd` / `_mm_max_pd`          | scalar tail lane         |
//! | `Portable` | compiler  | autovectorized scalar loop           | n/a                      |
//!
//! Selection is **runtime** dispatch: `Auto` resolves to the widest
//! feature `is_x86_feature_detected!` reports (overridable through the
//! `TSG_KERNEL` environment variable), and each `unsafe` dispatch arm
//! carries its *own* `is_x86_feature_detected!` guard, so no intrinsic
//! block can execute without the CPU check that makes it sound. The
//! portable loop is the guaranteed fallback on every architecture.
//!
//! The SIMD paths are bit-identical to the portable loop (and hence to
//! the scalar oracle): `src + δ` maps to a vector `add`, and the scalar
//! `if cand > best { best = cand }` maps to `max_pd(cand, best)` — x86
//! `MAXPD` returns its *second* operand on ties, so ties keep `best`
//! exactly like the strict `>`. No lane is ever NaN (delays are finite
//! and `NEG_INFINITY + δ` stays `NEG_INFINITY`), so `MAXPD`'s NaN corner
//! is unreachable. Lane storage lives on a 64-byte-aligned allocation,
//! so rows start on cache-line boundaries: vector loads never split a
//! line more often than the lane offset forces, and `run_parallel`'s
//! per-worker matrices cannot false-share a line with a neighbour.
//!
//! # Why the results are bit-identical to the scalar kernel
//!
//! Per lane, the wide kernel performs *the exact comparison sequence* of
//! the scalar kernel ([`SimArena`]):
//!
//! * in-arcs are visited in the same order, so the arg-max tie-breaking
//!   (first strict improvement wins) is unchanged;
//! * `NEG_INFINITY` ("not reached") propagates correctly through the
//!   branchless form: delays are finite, so `NEG_INFINITY + δ` is
//!   `NEG_INFINITY`, and it loses every strict `>` comparison — exactly
//!   the scalar kernel's explicit skip;
//! * row 0 is special-cased scalar before the lockstep rows begin:
//!   marked arcs have no previous row (the scalar kernel skips them) and
//!   lane `k`'s origin cell is pinned to `t_{gk}(g_k) = 0` after the
//!   row's recurrence, in topological order, so later same-row reads see
//!   the pinned value just as the scalar kernel's pre-seeded cell.
//!
//! Identical candidate values in identical comparison order give
//! identical IEEE-754 results bit for bit — asserted across generator
//! families *and backends* in `tests/wide.rs` and re-asserted by the
//! `bench` binary before any speedup is reported.
//!
//! The one thing the wide kernel does not track is parents: the
//! cycle-time algorithm needs backtracking only for the single winning
//! border event, which [`CycleTimeAnalysis::finish`] re-runs scalar with
//! `track_parents` — `O(b·m)` against the `O(b²·m)` main phase.
//!
//! [`CycleTimeAnalysis::finish`]: crate::analysis::CycleTimeAnalysis

use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

use tsg_sim::{CancelKind, CancelToken};

use crate::analysis::initiated::{NotRepetitive, SimArena};
use crate::analysis::structure::CyclicStructure;
use crate::arc::ArcId;
use crate::event::EventId;
use crate::graph::SignalGraph;

/// The wide kernel's execution backend.
///
/// `Auto` (the default) resolves at runtime to the widest path the CPU
/// supports; the explicit variants pin the choice — `Portable` forces
/// the autovectorized fallback loop, `Sse2`/`Avx2` the explicit-SIMD
/// paths. Deployments audit or pin the decision through
/// `tsg analyze --kernel`, `tsg serve --kernel`, the serve `stats` op
/// and the `TSG_KERNEL` environment variable.
///
/// # Examples
///
/// ```
/// use tsg_core::analysis::wide::KernelBackend;
///
/// let pinned: KernelBackend = "portable".parse().unwrap();
/// assert_eq!(pinned.resolve(), Ok(KernelBackend::Portable));
/// // `Auto` always resolves to a concrete, available backend.
/// assert_ne!(KernelBackend::Auto.resolve().unwrap(), KernelBackend::Auto);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// Resolve to the widest available SIMD path at runtime.
    #[default]
    Auto,
    /// The autovectorized portable lane loop — available everywhere.
    Portable,
    /// Explicit 2-wide `_mm_add_pd`/`_mm_max_pd` over the lanes.
    Sse2,
    /// Explicit 4-wide `_mm256_add_pd`/`_mm256_max_pd` over the lanes.
    Avx2,
}

impl KernelBackend {
    /// The lowercase wire/flag name (`auto`, `portable`, `sse2`, `avx2`)
    /// — what [`FromStr`] parses and the serve `stats` op reports.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Auto => "auto",
            KernelBackend::Portable => "portable",
            KernelBackend::Sse2 => "sse2",
            KernelBackend::Avx2 => "avx2",
        }
    }

    /// Whether this backend can execute on the current CPU.
    fn available(self) -> bool {
        match self {
            KernelBackend::Auto | KernelBackend::Portable => true,
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Sse2 => std::arch::is_x86_feature_detected!("sse2"),
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// The widest backend the CPU's feature flags allow, ignoring any
    /// environment override.
    fn widest_available() -> KernelBackend {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return KernelBackend::Avx2;
            }
            if std::arch::is_x86_feature_detected!("sse2") {
                return KernelBackend::Sse2;
            }
        }
        KernelBackend::Portable
    }

    /// The backend `Auto` resolves to on this machine: the `TSG_KERNEL`
    /// override when it names an available backend, else the widest the
    /// CPU supports. Never returns `Auto`.
    ///
    /// `TSG_KERNEL` is read once per process and ignored when unset,
    /// unparsable, `auto`, or naming an unavailable feature — it is a
    /// deployment/CI forcing knob (e.g. `TSG_KERNEL=portable` runs the
    /// whole suite on the fallback loop), not a validated user input;
    /// the `--kernel` flags are the loud, validated path.
    pub fn detect() -> KernelBackend {
        fn env_override() -> Option<KernelBackend> {
            static CACHE: OnceLock<Option<KernelBackend>> = OnceLock::new();
            *CACHE.get_or_init(|| {
                let forced: KernelBackend = std::env::var("TSG_KERNEL").ok()?.parse().ok()?;
                (forced != KernelBackend::Auto && forced.available()).then_some(forced)
            })
        }
        env_override().unwrap_or_else(Self::widest_available)
    }

    /// Resolves to a concrete, executable backend: `Auto` becomes
    /// [`KernelBackend::detect`], explicit choices are validated against
    /// the CPU. The result is never `Auto`.
    ///
    /// # Errors
    ///
    /// Returns [`KernelUnavailable`] when an explicitly requested
    /// feature is missing on this CPU — the structured error the
    /// `--kernel` flags surface.
    pub fn resolve(self) -> Result<KernelBackend, KernelUnavailable> {
        match self {
            KernelBackend::Auto => Ok(Self::detect()),
            b if b.available() => Ok(b),
            b => Err(KernelUnavailable(b)),
        }
    }

    /// [`resolve`](Self::resolve) that never fails: an unavailable
    /// explicit request falls back to the widest available backend.
    /// Deep engine paths use this so validation stays at the user-facing
    /// edge (flags validate loudly with [`resolve`](Self::resolve)
    /// *before* any arena is built).
    pub fn resolve_lenient(self) -> KernelBackend {
        self.resolve().unwrap_or_else(|_| Self::widest_available())
    }
}

impl fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for KernelBackend {
    type Err = UnknownKernel;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(KernelBackend::Auto),
            "portable" => Ok(KernelBackend::Portable),
            "sse2" => Ok(KernelBackend::Sse2),
            "avx2" => Ok(KernelBackend::Avx2),
            _ => Err(UnknownKernel(s.to_string())),
        }
    }
}

/// Parse error of [`KernelBackend`]: the string names no backend.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownKernel(pub String);

impl fmt::Display for UnknownKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown kernel backend `{}` (expected auto, portable, sse2 or avx2)",
            self.0
        )
    }
}

impl std::error::Error for UnknownKernel {}

/// An explicitly requested [`KernelBackend`] whose CPU feature the
/// running machine does not report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelUnavailable(pub KernelBackend);

impl fmt::Display for KernelUnavailable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernel backend `{}` is not available on this CPU",
            self.0
        )
    }
}

impl std::error::Error for KernelUnavailable {}

/// A wide run stopped by its [`CancelToken`] before filling every row.
///
/// Rows `0..rows_done` hold exact values for the current delay
/// assignment; rows at and above `rows_done` are stale or partially
/// overwritten. The matrix heals on the next uncancelled (re-)run that
/// restarts at or below `rows_done`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Cancelled {
    pub kind: CancelKind,
    pub rows_done: usize,
    pub rows_total: usize,
}

/// Why [`WideArena::run_with`] returned before filling the matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Halt {
    NotRepetitive(NotRepetitive),
    Cancelled(Cancelled),
    /// The batch shape is degenerate: zero lanes or zero periods.
    Degenerate {
        lanes: usize,
        periods: u32,
    },
}

/// Why a [`WideArena::run`] call failed.
///
/// A malformed batch — no lanes, no scenarios, zero periods — is a
/// structured error, never a panic, so a served request can never abort
/// a worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WideRunError {
    /// An initiating event is not repetitive.
    NotRepetitive(NotRepetitive),
    /// The requested batch shape has nothing to simulate.
    Degenerate {
        /// Requested lane count (`origins × scenarios`).
        lanes: usize,
        /// Requested simulation periods.
        periods: u32,
    },
}

impl fmt::Display for WideRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WideRunError::NotRepetitive(e) => e.fmt(f),
            WideRunError::Degenerate { lanes, periods } => write!(
                f,
                "degenerate simulation batch: {lanes} lane(s) over {periods} period(s)"
            ),
        }
    }
}

impl std::error::Error for WideRunError {}

/// One cache line of lane storage — the alignment carrier of
/// [`AlignedF64Vec`]. `repr(C, align(64))` with eight f64s makes size
/// equal alignment, so a `Vec` of these tiles gap-free.
#[derive(Clone, Copy, Debug)]
#[repr(C, align(64))]
struct CacheLine([f64; 8]);

/// A growable `f64` buffer on a 64-byte-aligned allocation with
/// `Vec::resize` fill semantics — the lane matrix's backing store, so
/// every row starts on a cache-line boundary and aligned vector loads
/// of the buffer head are valid.
#[derive(Clone, Debug, Default)]
struct AlignedF64Vec {
    chunks: Vec<CacheLine>,
    len: usize,
}

impl AlignedF64Vec {
    fn new() -> Self {
        Self::default()
    }

    /// Allocated capacity in f64 cells.
    fn capacity(&self) -> usize {
        self.chunks.capacity() * 8
    }

    fn as_slice(&self) -> &[f64] {
        // SAFETY: `chunks` stores at least `len.div_ceil(8)` cache lines
        // of initialised f64s; `CacheLine` is `repr(C)` with size equal
        // to its alignment (64), so the lines tile contiguously and the
        // first `len` f64s are one valid slice.
        unsafe { std::slice::from_raw_parts(self.chunks.as_ptr().cast::<f64>(), self.len) }
    }

    fn as_mut_slice(&mut self) -> &mut [f64] {
        // SAFETY: as in `as_slice`, plus `&mut self` gives exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.chunks.as_mut_ptr().cast::<f64>(), self.len) }
    }

    /// `Vec::resize` semantics: growth fills exactly `old_len..new_len`
    /// with `value` (cells below `old_len` keep their contents), shrink
    /// just drops length — so callers' stale-cell reasoning carries over
    /// from the plain `Vec` unchanged.
    fn resize(&mut self, new_len: usize, value: f64) {
        let old = self.len;
        self.chunks
            .resize(new_len.div_ceil(8), CacheLine([value; 8]));
        self.len = new_len;
        if new_len > old {
            self.as_mut_slice()[old..].fill(value);
        }
    }
}

/// Reusable backing store — and result view — of a batch of lockstep
/// event-initiated simulations, one lane per initiating event.
///
/// # Examples
///
/// ```
/// use tsg_core::SignalGraph;
/// use tsg_core::analysis::wide::WideArena;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SignalGraph::builder();
/// let xp = b.event("x+");
/// let xm = b.event("x-");
/// b.arc(xp, xm, 3.0);
/// b.marked_arc(xm, xp, 2.0);
/// let sg = b.build()?;
///
/// let mut wide = WideArena::new();
/// wide.run(&sg, &[xp, xm], 2)?; // two lanes, one shared traversal
/// assert_eq!(wide.time(0, xp, 1), Some(5.0));
/// assert_eq!(wide.time(1, xm, 1), Some(5.0));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct WideArena {
    /// Flat lane-major time matrix: `times[(p * n + e) * lanes + k]`,
    /// on a 64-byte-aligned allocation.
    times: AlignedF64Vec,
    /// Initiating event of each *border* lane; lane `j·b + k` of a
    /// scenario run shares `origins[k]`.
    origins: Vec<EventId>,
    /// Delay scenarios of the last run (1 in nominal mode); the total
    /// lane count is `origins.len() * scenarios`.
    scenarios: usize,
    /// Per-lane δ table of a scenario run, parallel to the structure's
    /// in-arc entries: `deltas[slot * lanes + lane]`, scenario `j`'s
    /// delay replicated over its `b` border lanes. Empty in nominal
    /// mode, where the kernels fold the structure's scalar δ instead.
    deltas: Vec<f64>,
    /// Events per row of the last run.
    n: usize,
    /// Rows of the last run (`periods + 1`).
    p_total: usize,
    /// Periods of the last run.
    periods: u32,
    /// The resolved execution backend (never `Auto`).
    backend: KernelBackend,
}

impl Default for WideArena {
    fn default() -> Self {
        Self::new()
    }
}

impl WideArena {
    /// An empty arena on the auto-detected kernel backend; the first
    /// [`WideArena::run`] sizes it.
    pub fn new() -> Self {
        Self::with_kernel(KernelBackend::Auto)
    }

    /// An empty arena pinned to `kernel`, resolved leniently: `Auto`
    /// becomes the detected backend and an unavailable explicit request
    /// falls back to the widest available one — validate loudly first
    /// with [`KernelBackend::resolve`] where a structured error is
    /// wanted.
    pub fn with_kernel(kernel: KernelBackend) -> Self {
        WideArena {
            times: AlignedF64Vec::new(),
            origins: Vec::new(),
            scenarios: 1,
            deltas: Vec::new(),
            n: 0,
            p_total: 0,
            periods: 0,
            backend: kernel.resolve_lenient(),
        }
    }

    /// The resolved execution backend of this arena (never
    /// [`KernelBackend::Auto`]).
    pub fn kernel(&self) -> KernelBackend {
        self.backend
    }

    /// Runs one `g₀`-initiated simulation per origin, all lanes in
    /// lockstep over `periods` periods, reusing this arena's buffers.
    ///
    /// # Errors
    ///
    /// Returns [`WideRunError::NotRepetitive`] for the first
    /// non-repetitive origin, and [`WideRunError::Degenerate`] when
    /// `origins` is empty or `periods == 0` — a structured error, never
    /// a panic, so a malformed serve request can't abort a worker.
    pub fn run(
        &mut self,
        sg: &SignalGraph,
        origins: &[EventId],
        periods: u32,
    ) -> Result<(), WideRunError> {
        let structure = CyclicStructure::new(sg);
        match self.run_with(sg, &structure, origins, periods, None) {
            Ok(()) => Ok(()),
            Err(Halt::NotRepetitive(e)) => Err(WideRunError::NotRepetitive(e)),
            Err(Halt::Degenerate { lanes, periods }) => {
                Err(WideRunError::Degenerate { lanes, periods })
            }
            Err(Halt::Cancelled(_)) => unreachable!("no cancel token was supplied"),
        }
    }

    /// Shared-structure variant — the cycle-time algorithm builds one
    /// [`CyclicStructure`] and batches every border event over it. A
    /// [`CancelToken`] is polled once per matrix row; on cancellation
    /// the matrix is left partially written (see [`Cancelled`]).
    pub(crate) fn run_with(
        &mut self,
        sg: &SignalGraph,
        structure: &CyclicStructure,
        origins: &[EventId],
        periods: u32,
        cancel: Option<&CancelToken>,
    ) -> Result<(), Halt> {
        Self::validate(sg, origins, 1, periods)?;
        self.scenarios = 1;
        self.deltas.clear();
        self.seed_and_compute(sg, structure, origins, periods, cancel)
    }

    /// Scenario-lane variant: packs `origins.len() × scenarios` lanes —
    /// lane `j·b + k` simulates border `g_k` under delay scenario `j` —
    /// and sweeps them all in one lockstep pass over the *nominal*
    /// structure. `delay_of(arc, j)` supplies scenario `j`'s delay for
    /// `arc`; the values are packed into the per-lane δ table the
    /// kernels fold instead of the structure's scalar delay. Per lane
    /// the result is bit-identical to a scalar run on the
    /// correspondingly reweighted graph.
    #[allow(clippy::too_many_arguments)] // matrix + dims + per-lane delays + cancel: kernel-entry plumbing
    pub(crate) fn run_scenarios_with<F: FnMut(ArcId, usize) -> f64>(
        &mut self,
        sg: &SignalGraph,
        structure: &CyclicStructure,
        origins: &[EventId],
        scenarios: usize,
        mut delay_of: F,
        periods: u32,
        cancel: Option<&CancelToken>,
    ) -> Result<(), Halt> {
        Self::validate(sg, origins, scenarios, periods)?;
        self.scenarios = scenarios;
        let b = origins.len();
        let lanes = b * scenarios;
        self.deltas.clear();
        self.deltas.resize(structure.entries.len() * lanes, 0.0);
        for (slot, entry) in structure.entries.iter().enumerate() {
            for j in 0..scenarios {
                let base = slot * lanes + j * b;
                self.deltas[base..base + b].fill(delay_of(entry.arc, j));
            }
        }
        self.seed_and_compute(sg, structure, origins, periods, cancel)
    }

    /// Rebuilds the whole δ table for the *current* batch shape against
    /// a (possibly re-flattened) structure — the session's
    /// structural-edit hook: slots remap when the in-arc table is
    /// rebuilt, so the table is re-derived while the lane matrix itself
    /// resumes from the min dirty row.
    pub(crate) fn rebuild_scenario_deltas<F: FnMut(ArcId, usize) -> f64>(
        &mut self,
        structure: &CyclicStructure,
        mut delay_of: F,
    ) {
        let b = self.origins.len();
        let lanes = b * self.scenarios;
        self.deltas.clear();
        self.deltas.resize(structure.entries.len() * lanes, 0.0);
        for (slot, entry) in structure.entries.iter().enumerate() {
            for j in 0..self.scenarios {
                let base = slot * lanes + j * b;
                self.deltas[base..base + b].fill(delay_of(entry.arc, j));
            }
        }
    }

    /// Updates the stored δ vector of in-arc table slot `slot` for one
    /// scenario — the session's delay-edit hook, so a resumed scenario
    /// matrix folds the edited delay without a full δ-table rebuild.
    pub(crate) fn set_scenario_delay(&mut self, slot: usize, scenario: usize, delay: f64) {
        debug_assert!(!self.deltas.is_empty(), "arena is not in scenario mode");
        let b = self.origins.len();
        let lanes = b * self.scenarios;
        let base = slot * lanes + scenario * b;
        self.deltas[base..base + b].fill(delay);
    }

    /// The shape/precondition gate of every run entry point: degenerate
    /// batches and non-repetitive origins are structured [`Halt`]s.
    fn validate(
        sg: &SignalGraph,
        origins: &[EventId],
        scenarios: usize,
        periods: u32,
    ) -> Result<(), Halt> {
        if periods == 0 || origins.is_empty() || scenarios == 0 {
            return Err(Halt::Degenerate {
                lanes: origins.len() * scenarios,
                periods,
            });
        }
        for &g in origins {
            if !sg.is_repetitive(g) {
                return Err(Halt::NotRepetitive(NotRepetitive(g)));
            }
        }
        Ok(())
    }

    /// Installs the batch shape, resets stale cells and computes every
    /// row — the shared tail of the validated run entry points.
    fn seed_and_compute(
        &mut self,
        sg: &SignalGraph,
        structure: &CyclicStructure,
        origins: &[EventId],
        periods: u32,
        cancel: Option<&CancelToken>,
    ) -> Result<(), Halt> {
        let n = sg.event_count();
        let lanes = origins.len() * self.scenarios;
        let p_total = periods as usize + 1;
        self.n = n;
        self.p_total = p_total;
        self.periods = periods;
        self.origins.clear();
        self.origins.extend_from_slice(origins);

        // `resize` touches existing capacity only: after the first run
        // of this shape, no allocator traffic. No global fill: the
        // recurrence overwrites every repetitive event's cell in every
        // row, so only the columns of events *outside* the cyclic
        // structure (prefix/finite events — usually none) need their
        // NEG_INFINITY reset against stale cells of a previous run.
        let cells = p_total * n * lanes;
        self.times.resize(cells, f64::NEG_INFINITY);
        let times = self.times.as_mut_slice();
        for e in sg.events() {
            if !sg.is_repetitive(e) {
                for p in 0..p_total {
                    let base = (p * n + e.index()) * lanes;
                    times[base..base + lanes].fill(f64::NEG_INFINITY);
                }
            }
        }

        self.compute_rows(structure, 0, cancel)
            .map_err(Halt::Cancelled)
    }

    /// Dirty-region restart: recomputes rows `start_row..` of the *same*
    /// batch this arena last ran — every lane, in one shared pass —
    /// assuming rows below `start_row` are still exact for the current
    /// delay assignment. The caller
    /// ([`AnalysisSession`](crate::analysis::session::AnalysisSession))
    /// guarantees no edited arc can influence any lane's cell below its
    /// per-lane `r0`, and passes the minimum of those: lanes whose own
    /// dirty region starts later have their intermediate rows recomputed
    /// to bit-identical values (the recurrence is a pure function of the
    /// rows below), so the resulting matrix equals a full re-run over
    /// the edited structure bit for bit.
    pub(crate) fn rerun_rows_from(
        &mut self,
        structure: &CyclicStructure,
        start_row: usize,
        cancel: Option<&CancelToken>,
    ) -> Result<(), Cancelled> {
        if start_row >= self.p_total {
            return Ok(()); // the batch's earliest influence is beyond the horizon
        }
        self.compute_rows(structure, start_row, cancel)
    }

    /// The lockstep longest-path recurrence over rows
    /// `start_row..p_total`: the runtime dispatch point of
    /// [`KernelBackend`].
    ///
    /// The SIMD arms each re-check `is_x86_feature_detected!` *in the
    /// match guard*, so the `unsafe` call they contain can never execute
    /// without the CPU check that makes it sound (std caches the cpuid
    /// result, so the re-check is an atomic load). Anything that fails
    /// its guard — and every non-x86 build — falls through to the
    /// portable loop, which dispatches to a lane-count-specialised
    /// instantiation for the common SIMD widths so the per-arc lane
    /// loops compile with a constant trip count.
    fn compute_rows(
        &mut self,
        structure: &CyclicStructure,
        start_row: usize,
        cancel: Option<&CancelToken>,
    ) -> Result<(), Cancelled> {
        #[cfg(target_arch = "x86_64")]
        {
            let (n, p_total, scenarios) = (self.n, self.p_total, self.scenarios);
            match self.backend {
                KernelBackend::Avx2 if std::arch::is_x86_feature_detected!("avx2") => {
                    let WideArena {
                        times,
                        origins,
                        deltas,
                        ..
                    } = self;
                    // SAFETY: this arm's own guard just verified AVX2.
                    return unsafe {
                        rows_avx2(
                            times.as_mut_slice(),
                            origins,
                            scenarios,
                            deltas,
                            structure,
                            n,
                            p_total,
                            start_row,
                            cancel,
                        )
                    };
                }
                KernelBackend::Sse2 if std::arch::is_x86_feature_detected!("sse2") => {
                    let WideArena {
                        times,
                        origins,
                        deltas,
                        ..
                    } = self;
                    // SAFETY: this arm's own guard just verified SSE2.
                    return unsafe {
                        rows_sse2(
                            times.as_mut_slice(),
                            origins,
                            scenarios,
                            deltas,
                            structure,
                            n,
                            p_total,
                            start_row,
                            cancel,
                        )
                    };
                }
                _ => {}
            }
        }
        match self.lanes() {
            4 => self.compute_rows_impl::<4>(structure, start_row, cancel),
            8 => self.compute_rows_impl::<8>(structure, start_row, cancel),
            16 => self.compute_rows_impl::<16>(structure, start_row, cancel),
            32 => self.compute_rows_impl::<32>(structure, start_row, cancel),
            _ => self.compute_rows_impl::<0>(structure, start_row, cancel),
        }
    }

    /// One lane-count instantiation of the recurrence (`L == 0` is the
    /// dynamic-width fallback); row `start_row - 1` (when any) must hold
    /// valid values.
    ///
    /// Per event the row is split around the destination cell
    /// (`split_at_mut`), so the `lanes` accumulator IS the destination —
    /// no scratch buffer, no copy-back pass. Unmarked in-arcs always
    /// read a *different* event's cell (the unmarked subgraph is
    /// acyclic, so `src ≠ ev`), which lands in the left or right remnant
    /// of the split; marked in-arcs read the previous row.
    fn compute_rows_impl<const L: usize>(
        &mut self,
        structure: &CyclicStructure,
        start_row: usize,
        cancel: Option<&CancelToken>,
    ) -> Result<(), Cancelled> {
        let n = self.n;
        let p_total = self.p_total;
        let b = self.origins.len();
        let lanes = if L == 0 { b * self.scenarios } else { L };
        let row_cells = n * lanes;
        let WideArena {
            times,
            origins,
            deltas,
            ..
        } = self;
        let times = times.as_mut_slice();
        for p in start_row..p_total {
            // One poll per matrix row: a row is `O(m · lanes)` work, so
            // the check cost vanishes while aborts still land within one
            // row of the signal.
            if let Some(kind) = cancel.and_then(CancelToken::check) {
                return Err(Cancelled {
                    kind,
                    rows_done: p,
                    rows_total: p_total,
                });
            }
            let (before, current) = times.split_at_mut(p * row_cells);
            let row = &mut current[..row_cells];
            let prev: &[f64] = if p > 0 {
                &before[(p - 1) * row_cells..]
            } else {
                &[]
            };
            for &ev in &structure.order {
                let base = ev.index() * lanes;
                let (left, rest) = row.split_at_mut(base);
                let (dst, right) = rest.split_at_mut(lanes);
                let slot0 = structure.offsets[ev.index()] as usize;
                let mut first = true;
                for (off, ia) in structure.in_arcs(ev).iter().enumerate() {
                    let sb = ia.src as usize * lanes;
                    let src = if ia.marked {
                        if p == 0 {
                            continue; // no previous row: token enables for free
                        }
                        &prev[sb..sb + lanes]
                    } else if sb < base {
                        &left[sb..sb + lanes]
                    } else {
                        &right[sb - base - lanes..][..lanes]
                    };
                    if deltas.is_empty() {
                        accumulate(dst, src, ia.delay, first);
                    } else {
                        let dbase = (slot0 + off) * lanes;
                        accumulate_v(dst, src, &deltas[dbase..dbase + lanes], first);
                    }
                    first = false;
                }
                if first {
                    dst.fill(f64::NEG_INFINITY); // no usable in-arc
                }
                if p == 0 {
                    // Row 0: pin each lane's origin cell to 0, in
                    // topological order, so later same-row reads see it
                    // exactly as the scalar kernel's pre-seeded cell.
                    // Border k owns lanes k, k+b, … — one per scenario.
                    for (k, &g) in origins.iter().enumerate() {
                        if g == ev {
                            for lane in (k..lanes).step_by(b) {
                                dst[lane] = 0.0; // t_g(g) = 0 by definition
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Allocated capacity of the lane-major time buffer, in cells.
    ///
    /// A warm-pool worker asserts this stays constant across requests of
    /// the same shape, exactly like [`SimArena::capacity`].
    pub fn capacity(&self) -> usize {
        self.times.capacity()
    }

    /// Number of lanes of the last run (`borders × scenarios`).
    pub fn lanes(&self) -> usize {
        self.origins.len() * self.scenarios
    }

    /// Number of border lanes (initiating events) of the last run.
    pub fn borders(&self) -> usize {
        self.origins.len()
    }

    /// Number of delay scenarios of the last run (1 in nominal mode).
    pub fn scenarios(&self) -> usize {
        self.scenarios
    }

    /// The initiating event of lane `k` (`origins[k mod b]` — lanes of
    /// the same border across scenarios share their origin).
    ///
    /// # Panics
    ///
    /// Panics when the arena has never run.
    pub fn origin(&self, k: usize) -> EventId {
        self.origins[k % self.origins.len()]
    }

    /// The delay-scenario index of lane `k` (`k / b`).
    pub fn scenario_of(&self, k: usize) -> usize {
        k / self.origins.len()
    }

    /// Periods of the last run (instances `0..=periods` are available).
    pub fn periods(&self) -> u32 {
        self.periods
    }

    /// `t_{gk,0}(e_p)` of lane `k`, or `None` when `g_{k,0} ⇏ e_p` —
    /// the lane-indexed twin of [`SimArena::time`].
    pub fn time(&self, k: usize, e: EventId, instance: u32) -> Option<f64> {
        let p = instance as usize;
        let lanes = self.lanes();
        if p >= self.p_total || k >= lanes {
            return None;
        }
        let t = self.times.as_slice()[(p * self.n + e.index()) * lanes + k];
        (t > f64::NEG_INFINITY).then_some(t)
    }

    /// All defined `δ_{gk,0}(g_{k,i})` of lane `k`, as `(i, t, δ)`.
    pub fn distance_series(&self, k: usize) -> Vec<(u32, f64, f64)> {
        let mut out = Vec::new();
        self.distance_series_into(k, &mut out);
        out
    }

    /// Allocation-reusing form of [`distance_series`](Self::distance_series):
    /// clears `out` and fills it in place, so a warm caller (an
    /// analysis session's per-border record) keeps one buffer per lane
    /// alive across re-runs.
    pub fn distance_series_into(&self, k: usize, out: &mut Vec<(u32, f64, f64)>) {
        out.clear();
        let g = self.origin(k);
        out.extend(
            (1..=self.periods).filter_map(|i| self.time(k, g, i).map(|t| (i, t, t / i as f64))),
        );
    }
}

/// The widened recurrence step: `dst[k] = max(dst[k], src[k] + δ)` for
/// every lane, branchless — the portable loop the autovectorizer turns
/// into SIMD `add`/`max` over contiguous lanes.
///
/// The event's `first` in-arc stores its candidates directly instead of
/// comparing against a freshly filled `NEG_INFINITY` accumulator — bit-
/// identical, because `max(NEG_INFINITY, cand)` is `cand` whether `cand`
/// is finite or `NEG_INFINITY` itself — which saves one full pass over
/// the lanes per event.
#[inline(always)]
fn accumulate(dst: &mut [f64], src: &[f64], delay: f64, first: bool) {
    if first {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = s + delay;
        }
        return;
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        let cand = s + delay;
        if cand > *d {
            *d = cand;
        }
    }
}

/// The scenario-lane form of [`accumulate`]: the delay is a per-lane δ
/// vector instead of a broadcast scalar — same branchless shape, so the
/// autovectorizer emits the same `add`/`max` with a vector load of the
/// δs in place of the splat.
#[inline(always)]
fn accumulate_v(dst: &mut [f64], src: &[f64], deltas: &[f64], first: bool) {
    if first {
        for ((d, &s), &dl) in dst.iter_mut().zip(src).zip(deltas) {
            *d = s + dl;
        }
        return;
    }
    for ((d, &s), &dl) in dst.iter_mut().zip(src).zip(deltas) {
        let cand = s + dl;
        if cand > *d {
            *d = cand;
        }
    }
}

/// The per-backend lane arithmetic of the explicit-SIMD row loop: the
/// two operations [`rows_body`] needs per in-arc.
///
/// Implementations must keep `dst` on ties in `fold` (the portable
/// loop's strict `>`), which `max_pd(cand, best)` does for free: x86
/// `MAXPD` returns its second operand on ties.
#[cfg(target_arch = "x86_64")]
trait LaneOps {
    /// `dst[k] = src[k] + delay` — the event's first usable in-arc.
    ///
    /// # Safety
    ///
    /// The CPU must support the implementing backend's feature (the
    /// dispatch arm's `is_x86_feature_detected!` guard).
    unsafe fn first(dst: &mut [f64], src: &[f64], delay: f64);

    /// `dst[k] = max(dst[k], src[k] + delay)`, keeping `dst` on ties.
    ///
    /// # Safety
    ///
    /// As [`LaneOps::first`].
    unsafe fn fold(dst: &mut [f64], src: &[f64], delay: f64);

    /// `dst[k] = src[k] + deltas[k]` — [`LaneOps::first`] with a
    /// per-lane δ vector (the scenario-lane delay table) in place of
    /// the broadcast scalar.
    ///
    /// # Safety
    ///
    /// As [`LaneOps::first`].
    unsafe fn first_v(dst: &mut [f64], src: &[f64], deltas: &[f64]);

    /// `dst[k] = max(dst[k], src[k] + deltas[k])`, keeping `dst` on
    /// ties — [`LaneOps::fold`] with a per-lane δ vector.
    ///
    /// # Safety
    ///
    /// As [`LaneOps::first`].
    unsafe fn fold_v(dst: &mut [f64], src: &[f64], deltas: &[f64]);
}

/// A 4-lane mask with the first `rem` (1..=3) 64-bit lanes enabled,
/// built by sliding a load window over a constant sign pattern.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn tail_mask(rem: usize) -> std::arch::x86_64::__m256i {
    use std::arch::x86_64::_mm256_loadu_si256;
    debug_assert!((1..=3).contains(&rem));
    const PATTERN: [i64; 8] = [-1, -1, -1, -1, 0, 0, 0, 0];
    _mm256_loadu_si256(PATTERN.as_ptr().add(4 - rem).cast())
}

/// 4-wide AVX2 lane arithmetic; remainder lanes go through
/// `maskload`/`maskstore`, which architecturally never touch the
/// masked-out lanes (no out-of-bounds access, no fault).
#[cfg(target_arch = "x86_64")]
struct Avx2Ops;

#[cfg(target_arch = "x86_64")]
impl LaneOps for Avx2Ops {
    #[inline(always)]
    unsafe fn first(dst: &mut [f64], src: &[f64], delay: f64) {
        use std::arch::x86_64::*;
        debug_assert_eq!(dst.len(), src.len());
        let n = dst.len();
        let d = _mm256_set1_pd(delay);
        let mut i = 0usize;
        while i + 4 <= n {
            let s = _mm256_loadu_pd(src.as_ptr().add(i));
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_add_pd(s, d));
            i += 4;
        }
        if i < n {
            let mask = tail_mask(n - i);
            let s = _mm256_maskload_pd(src.as_ptr().add(i), mask);
            _mm256_maskstore_pd(dst.as_mut_ptr().add(i), mask, _mm256_add_pd(s, d));
        }
    }

    #[inline(always)]
    unsafe fn fold(dst: &mut [f64], src: &[f64], delay: f64) {
        use std::arch::x86_64::*;
        debug_assert_eq!(dst.len(), src.len());
        let n = dst.len();
        let d = _mm256_set1_pd(delay);
        let mut i = 0usize;
        while i + 4 <= n {
            let cand = _mm256_add_pd(_mm256_loadu_pd(src.as_ptr().add(i)), d);
            let best = _mm256_loadu_pd(dst.as_ptr().add(i));
            // MAXPD returns its second operand on ties: `(cand, best)`
            // keeps `best` unless `cand` is strictly greater — exactly
            // the portable `if cand > *d { *d = cand }`. No NaN can
            // reach here (finite delays; NEG_INFINITY + δ = NEG_INFINITY).
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_max_pd(cand, best));
            i += 4;
        }
        if i < n {
            let mask = tail_mask(n - i);
            let cand = _mm256_add_pd(_mm256_maskload_pd(src.as_ptr().add(i), mask), d);
            let best = _mm256_maskload_pd(dst.as_ptr().add(i), mask);
            _mm256_maskstore_pd(dst.as_mut_ptr().add(i), mask, _mm256_max_pd(cand, best));
        }
    }

    #[inline(always)]
    unsafe fn first_v(dst: &mut [f64], src: &[f64], deltas: &[f64]) {
        use std::arch::x86_64::*;
        debug_assert_eq!(dst.len(), src.len());
        debug_assert_eq!(dst.len(), deltas.len());
        let n = dst.len();
        let mut i = 0usize;
        while i + 4 <= n {
            let s = _mm256_loadu_pd(src.as_ptr().add(i));
            let d = _mm256_loadu_pd(deltas.as_ptr().add(i));
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_add_pd(s, d));
            i += 4;
        }
        if i < n {
            let mask = tail_mask(n - i);
            let s = _mm256_maskload_pd(src.as_ptr().add(i), mask);
            let d = _mm256_maskload_pd(deltas.as_ptr().add(i), mask);
            _mm256_maskstore_pd(dst.as_mut_ptr().add(i), mask, _mm256_add_pd(s, d));
        }
    }

    #[inline(always)]
    unsafe fn fold_v(dst: &mut [f64], src: &[f64], deltas: &[f64]) {
        use std::arch::x86_64::*;
        debug_assert_eq!(dst.len(), src.len());
        debug_assert_eq!(dst.len(), deltas.len());
        let n = dst.len();
        let mut i = 0usize;
        while i + 4 <= n {
            let d = _mm256_loadu_pd(deltas.as_ptr().add(i));
            let cand = _mm256_add_pd(_mm256_loadu_pd(src.as_ptr().add(i)), d);
            let best = _mm256_loadu_pd(dst.as_ptr().add(i));
            // Same tie/NaN argument as `fold`: MAXPD keeps its second
            // operand on ties.
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_max_pd(cand, best));
            i += 4;
        }
        if i < n {
            let mask = tail_mask(n - i);
            let d = _mm256_maskload_pd(deltas.as_ptr().add(i), mask);
            let cand = _mm256_add_pd(_mm256_maskload_pd(src.as_ptr().add(i), mask), d);
            let best = _mm256_maskload_pd(dst.as_ptr().add(i), mask);
            _mm256_maskstore_pd(dst.as_mut_ptr().add(i), mask, _mm256_max_pd(cand, best));
        }
    }
}

/// 2-wide SSE2 lane arithmetic; the odd remainder lane runs the scalar
/// step (bit-identical to the portable loop by construction).
#[cfg(target_arch = "x86_64")]
struct Sse2Ops;

#[cfg(target_arch = "x86_64")]
impl LaneOps for Sse2Ops {
    #[inline(always)]
    unsafe fn first(dst: &mut [f64], src: &[f64], delay: f64) {
        use std::arch::x86_64::*;
        debug_assert_eq!(dst.len(), src.len());
        let n = dst.len();
        let d = _mm_set1_pd(delay);
        let mut i = 0usize;
        while i + 2 <= n {
            let s = _mm_loadu_pd(src.as_ptr().add(i));
            _mm_storeu_pd(dst.as_mut_ptr().add(i), _mm_add_pd(s, d));
            i += 2;
        }
        if i < n {
            dst[i] = src[i] + delay;
        }
    }

    #[inline(always)]
    unsafe fn fold(dst: &mut [f64], src: &[f64], delay: f64) {
        use std::arch::x86_64::*;
        debug_assert_eq!(dst.len(), src.len());
        let n = dst.len();
        let d = _mm_set1_pd(delay);
        let mut i = 0usize;
        while i + 2 <= n {
            let cand = _mm_add_pd(_mm_loadu_pd(src.as_ptr().add(i)), d);
            let best = _mm_loadu_pd(dst.as_ptr().add(i));
            // Same tie/NaN argument as the AVX2 fold: MAXPD keeps its
            // second operand on ties.
            _mm_storeu_pd(dst.as_mut_ptr().add(i), _mm_max_pd(cand, best));
            i += 2;
        }
        if i < n {
            let cand = src[i] + delay;
            if cand > dst[i] {
                dst[i] = cand;
            }
        }
    }

    #[inline(always)]
    unsafe fn first_v(dst: &mut [f64], src: &[f64], deltas: &[f64]) {
        use std::arch::x86_64::*;
        debug_assert_eq!(dst.len(), src.len());
        debug_assert_eq!(dst.len(), deltas.len());
        let n = dst.len();
        let mut i = 0usize;
        while i + 2 <= n {
            let s = _mm_loadu_pd(src.as_ptr().add(i));
            let d = _mm_loadu_pd(deltas.as_ptr().add(i));
            _mm_storeu_pd(dst.as_mut_ptr().add(i), _mm_add_pd(s, d));
            i += 2;
        }
        if i < n {
            dst[i] = src[i] + deltas[i];
        }
    }

    #[inline(always)]
    unsafe fn fold_v(dst: &mut [f64], src: &[f64], deltas: &[f64]) {
        use std::arch::x86_64::*;
        debug_assert_eq!(dst.len(), src.len());
        debug_assert_eq!(dst.len(), deltas.len());
        let n = dst.len();
        let mut i = 0usize;
        while i + 2 <= n {
            let d = _mm_loadu_pd(deltas.as_ptr().add(i));
            let cand = _mm_add_pd(_mm_loadu_pd(src.as_ptr().add(i)), d);
            let best = _mm_loadu_pd(dst.as_ptr().add(i));
            // Same tie/NaN argument as the AVX2 fold: MAXPD keeps its
            // second operand on ties.
            _mm_storeu_pd(dst.as_mut_ptr().add(i), _mm_max_pd(cand, best));
            i += 2;
        }
        if i < n {
            let cand = src[i] + deltas[i];
            if cand > dst[i] {
                dst[i] = cand;
            }
        }
    }
}

/// The dynamic-width row recurrence shared by the explicit-SIMD
/// backends: the exact control flow of
/// [`WideArena::compute_rows_impl`], with the per-arc lane arithmetic
/// delegated to `K`. `#[inline(always)]` so each `#[target_feature]`
/// wrapper compiles the whole body — intrinsics included — with its
/// feature set enabled.
///
/// # Safety
///
/// The CPU must support the feature `K`'s intrinsics require.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn rows_body<K: LaneOps>(
    times: &mut [f64],
    origins: &[EventId],
    scenarios: usize,
    deltas: &[f64],
    structure: &CyclicStructure,
    n: usize,
    p_total: usize,
    start_row: usize,
    cancel: Option<&CancelToken>,
) -> Result<(), Cancelled> {
    let b = origins.len();
    let lanes = b * scenarios;
    let row_cells = n * lanes;
    for p in start_row..p_total {
        // One poll per matrix row — see `compute_rows_impl`.
        if let Some(kind) = cancel.and_then(CancelToken::check) {
            return Err(Cancelled {
                kind,
                rows_done: p,
                rows_total: p_total,
            });
        }
        let (before, current) = times.split_at_mut(p * row_cells);
        let row = &mut current[..row_cells];
        let prev: &[f64] = if p > 0 {
            &before[(p - 1) * row_cells..]
        } else {
            &[]
        };
        for &ev in &structure.order {
            let base = ev.index() * lanes;
            let slot0 = structure.offsets[ev.index()] as usize;
            let (left, rest) = row.split_at_mut(base);
            let (dst, right) = rest.split_at_mut(lanes);
            let mut first = true;
            for (off, ia) in structure.in_arcs(ev).iter().enumerate() {
                let sb = ia.src as usize * lanes;
                let src = if ia.marked {
                    if p == 0 {
                        continue; // no previous row: token enables for free
                    }
                    &prev[sb..sb + lanes]
                } else if sb < base {
                    &left[sb..sb + lanes]
                } else {
                    &right[sb - base - lanes..][..lanes]
                };
                if deltas.is_empty() {
                    if first {
                        K::first(dst, src, ia.delay);
                    } else {
                        K::fold(dst, src, ia.delay);
                    }
                } else {
                    let dv = &deltas[(slot0 + off) * lanes..][..lanes];
                    if first {
                        K::first_v(dst, src, dv);
                    } else {
                        K::fold_v(dst, src, dv);
                    }
                }
                first = false;
            }
            if first {
                dst.fill(f64::NEG_INFINITY); // no usable in-arc
            }
            if p == 0 {
                // Row 0: pin each lane's origin cell to 0, in
                // topological order — see `compute_rows_impl`. Lane
                // j*b + k is (scenario j, border k), so border k owns
                // every b-strided lane starting at k.
                for (k, &g) in origins.iter().enumerate() {
                    if g == ev {
                        for lane in (k..lanes).step_by(b) {
                            dst[lane] = 0.0; // t_g(g) = 0 by definition
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// AVX2 instantiation of the row recurrence.
///
/// # Safety
///
/// The CPU must support AVX2 (`is_x86_feature_detected!("avx2")`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn rows_avx2(
    times: &mut [f64],
    origins: &[EventId],
    scenarios: usize,
    deltas: &[f64],
    structure: &CyclicStructure,
    n: usize,
    p_total: usize,
    start_row: usize,
    cancel: Option<&CancelToken>,
) -> Result<(), Cancelled> {
    rows_body::<Avx2Ops>(
        times, origins, scenarios, deltas, structure, n, p_total, start_row, cancel,
    )
}

/// SSE2 instantiation of the row recurrence.
///
/// # Safety
///
/// The CPU must support SSE2 (`is_x86_feature_detected!("sse2")` —
/// baseline on x86-64, but the dispatch guard checks anyway).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
#[allow(clippy::too_many_arguments)]
unsafe fn rows_sse2(
    times: &mut [f64],
    origins: &[EventId],
    scenarios: usize,
    deltas: &[f64],
    structure: &CyclicStructure,
    n: usize,
    p_total: usize,
    start_row: usize,
    cancel: Option<&CancelToken>,
) -> Result<(), Cancelled> {
    rows_body::<Sse2Ops>(
        times, origins, scenarios, deltas, structure, n, p_total, start_row, cancel,
    )
}

/// The reusable state of one full cycle-time analysis: the wide matrix
/// all `b` lockstep border simulations share, plus the scalar
/// [`SimArena`] the parent-tracked winner re-run uses.
///
/// [`CycleTimeAnalysis::run_in`](crate::analysis::CycleTimeAnalysis::run_in)
/// reuses one of these per worker/request the way the scalar engine
/// reuses a [`SimArena`]: after the first analysis of the largest shape,
/// repeated analyses never touch the allocator.
#[derive(Clone, Debug, Default)]
pub struct AnalysisArena {
    pub(crate) wide: WideArena,
    pub(crate) finish: SimArena,
    /// The shared evaluation structure, rebuilt in place per analysed
    /// graph (buffer-reusing; see [`CyclicStructure::rebuild`]).
    pub(crate) structure: CyclicStructure,
}

impl AnalysisArena {
    /// An empty arena pair on the auto-detected kernel backend; the
    /// first analysis sizes both.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty arena pair pinned to `kernel` (resolved leniently, like
    /// [`WideArena::with_kernel`]).
    pub fn with_kernel(kernel: KernelBackend) -> Self {
        AnalysisArena {
            wide: WideArena::with_kernel(kernel),
            ..Self::default()
        }
    }

    /// The resolved kernel backend the wide phase runs on.
    pub fn kernel(&self) -> KernelBackend {
        self.wide.kernel()
    }

    /// Allocated capacities `(wide time cells, scalar time cells,
    /// scalar parent cells)` — the warm-pool zero-allocation assertions
    /// check all three stay constant across same-shape requests.
    pub fn capacity(&self) -> (usize, usize, usize) {
        let (t, p) = self.finish.capacity();
        (self.wide.capacity(), t, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignalGraph;

    fn figure2() -> SignalGraph {
        let mut b = SignalGraph::builder();
        let e = b.initial_event("e-");
        let f = b.finite_event("f-");
        let ap = b.event("a+");
        let bp = b.event("b+");
        let cp = b.event("c+");
        let am = b.event("a-");
        let bm = b.event("b-");
        let cm = b.event("c-");
        b.arc(e, f, 3.0);
        b.disengageable_arc(e, ap, 2.0);
        b.disengageable_arc(f, bp, 1.0);
        b.arc(ap, cp, 3.0);
        b.arc(bp, cp, 2.0);
        b.arc(cp, am, 2.0);
        b.arc(cp, bm, 1.0);
        b.arc(am, cm, 3.0);
        b.arc(bm, cm, 2.0);
        b.marked_arc(cm, ap, 2.0);
        b.marked_arc(cm, bp, 1.0);
        b.build().unwrap()
    }

    /// Every lane of a wide run must equal the scalar simulation of the
    /// same origin, cell for cell, bit for bit.
    fn assert_lanes_match_scalar(sg: &SignalGraph, wide: &WideArena, ctx: &str) {
        let mut scalar = SimArena::new();
        for k in 0..wide.lanes() {
            let g = wide.origin(k);
            scalar.run(sg, g, wide.periods(), false).unwrap();
            for e in sg.events() {
                for p in 0..=wide.periods() {
                    assert_eq!(
                        wide.time(k, e, p).map(f64::to_bits),
                        scalar.time(e, p).map(f64::to_bits),
                        "{ctx}: lane {k} ({}) e={} p={p}",
                        sg.label(g),
                        sg.label(e)
                    );
                }
            }
            assert_eq!(wide.distance_series(k), scalar.distance_series(), "{ctx}");
        }
    }

    /// The backends that resolve on the running machine — always at
    /// least `Portable`, plus each SIMD path the CPU supports.
    fn available_backends() -> Vec<KernelBackend> {
        [
            KernelBackend::Portable,
            KernelBackend::Sse2,
            KernelBackend::Avx2,
        ]
        .into_iter()
        .filter(|b| b.resolve() == Ok(*b))
        .collect()
    }

    #[test]
    fn lockstep_lanes_equal_scalar_simulations() {
        let sg = figure2();
        let borders = sg.border_events();
        assert_eq!(borders.len(), 2);
        for backend in available_backends() {
            let mut wide = WideArena::with_kernel(backend);
            for periods in [1u32, 2, 3, 7] {
                wide.run(&sg, &borders, periods).unwrap();
                assert_lanes_match_scalar(&sg, &wide, &format!("{backend} periods={periods}"));
            }
        }
    }

    #[test]
    fn single_lane_is_the_scalar_kernel() {
        let sg = figure2();
        let ap = sg.event_by_label("a+").unwrap();
        for backend in available_backends() {
            let mut wide = WideArena::with_kernel(backend);
            wide.run(&sg, &[ap], 2).unwrap();
            assert_lanes_match_scalar(&sg, &wide, &format!("single lane on {backend}"));
            assert_eq!(wide.time(0, ap, 1), Some(10.0));
        }
    }

    #[test]
    fn arena_reuse_across_shapes_leaves_no_ghosts() {
        let big = {
            let mut b = SignalGraph::builder();
            let evs: Vec<_> = (0..12).map(|i| b.event(&format!("e{i}"))).collect();
            for w in evs.windows(2) {
                b.arc(w[0], w[1], 1.0);
            }
            b.marked_arc(evs[11], evs[0], 1.0);
            b.marked_arc(evs[5], evs[6], 0.5);
            b.build().unwrap()
        };
        let small = figure2();
        for backend in available_backends() {
            let mut wide = WideArena::with_kernel(backend);
            wide.run(&big, &big.border_events(), 8).unwrap();
            assert_lanes_match_scalar(&big, &wide, &format!("big on {backend}"));
            wide.run(&small, &small.border_events(), 2).unwrap();
            assert_lanes_match_scalar(&small, &wide, &format!("small after big on {backend}"));
        }
    }

    #[test]
    fn rerun_rows_from_matches_full_rerun() {
        // Edit a delay, resume from each candidate row whose cells the
        // edit cannot influence, and compare against a from-scratch wide
        // run of the edited graph.
        let mut sg = figure2();
        let borders = sg.border_events();
        let mut wide = WideArena::new();
        wide.run(&sg, &borders, 3).unwrap();

        // The c- -> a+ marked arc: ε(a+ -> c-) = 0, marked, so r0 = 1
        // for the a+ lane (and 1 for b+ via the same reasoning).
        let cm = sg.event_by_label("c-").unwrap();
        let ap = sg.event_by_label("a+").unwrap();
        let arc = sg.arc_between(cm, ap).unwrap();
        sg.set_delay(arc, 6.5).unwrap();
        let structure = CyclicStructure::new(&sg);
        wide.rerun_rows_from(&structure, 1, None).unwrap();

        let mut fresh = WideArena::new();
        fresh.run(&sg, &borders, 3).unwrap();
        for k in 0..borders.len() {
            for e in sg.events() {
                for p in 0..=3 {
                    assert_eq!(
                        wide.time(k, e, p).map(f64::to_bits),
                        fresh.time(k, e, p).map(f64::to_bits),
                        "lane {k} e={} p={p}",
                        sg.label(e)
                    );
                }
            }
        }
        assert_lanes_match_scalar(&sg, &wide, "after resume");
    }

    #[test]
    fn rerun_beyond_horizon_is_a_noop() {
        let sg = figure2();
        let borders = sg.border_events();
        let mut wide = WideArena::new();
        wide.run(&sg, &borders, 2).unwrap();
        let before = wide.times.as_slice().to_vec();
        let structure = CyclicStructure::new(&sg);
        wide.rerun_rows_from(&structure, 3, None).unwrap();
        assert_eq!(wide.times.as_slice(), &before[..]);
    }

    #[test]
    fn cancelled_rerun_heals_bit_identically_on_the_next_pass() {
        // Abort a resumed run at every possible row, then finish without
        // a token: the half-written matrix must heal to the exact bits
        // of a from-scratch run on every backend.
        for backend in available_backends() {
            let mut sg = figure2();
            let borders = sg.border_events();
            let mut wide = WideArena::with_kernel(backend);
            wide.run(&sg, &borders, 5).unwrap();
            let cm = sg.event_by_label("c-").unwrap();
            let ap = sg.event_by_label("a+").unwrap();
            let arc = sg.arc_between(cm, ap).unwrap();
            sg.set_delay(arc, 6.5).unwrap();
            let structure = CyclicStructure::new(&sg);
            for budget in 0..4u64 {
                let token = CancelToken::cancel_after_checks(budget);
                let err = wide
                    .rerun_rows_from(&structure, 1, Some(&token))
                    .unwrap_err();
                assert_eq!(err.kind, CancelKind::Explicit, "{backend}");
                assert_eq!(err.rows_done, 1 + budget as usize, "{backend}");
                assert_eq!(err.rows_total, 6, "{backend}");
            }
            wide.rerun_rows_from(&structure, 1, None).unwrap();
            let mut fresh = WideArena::with_kernel(backend);
            fresh.run(&sg, &borders, 5).unwrap();
            assert_eq!(
                wide.times
                    .as_slice()
                    .iter()
                    .map(|t| t.to_bits())
                    .collect::<Vec<_>>(),
                fresh
                    .times
                    .as_slice()
                    .iter()
                    .map(|t| t.to_bits())
                    .collect::<Vec<_>>(),
                "{backend}: healed matrix must equal from-scratch"
            );
        }
    }

    #[test]
    fn non_repetitive_origin_rejected() {
        let sg = figure2();
        let e = sg.event_by_label("e-").unwrap();
        let ap = sg.event_by_label("a+").unwrap();
        let mut wide = WideArena::new();
        assert_eq!(
            wide.run(&sg, &[ap, e], 2).unwrap_err(),
            WideRunError::NotRepetitive(NotRepetitive(e))
        );
    }

    #[test]
    fn degenerate_batches_are_structured_errors_not_panics() {
        let sg = figure2();
        let ap = sg.event_by_label("a+").unwrap();
        let mut wide = WideArena::new();
        assert_eq!(
            wide.run(&sg, &[], 2).unwrap_err(),
            WideRunError::Degenerate {
                lanes: 0,
                periods: 2
            }
        );
        assert_eq!(
            wide.run(&sg, &[ap], 0).unwrap_err(),
            WideRunError::Degenerate {
                lanes: 1,
                periods: 0
            }
        );
        let structure = CyclicStructure::new(&sg);
        assert_eq!(
            wide.run_scenarios_with(&sg, &structure, &[ap], 0, |_, _| 1.0, 2, None)
                .unwrap_err(),
            Halt::Degenerate {
                lanes: 0,
                periods: 2
            }
        );
    }

    /// Every scenario lane must equal, bit for bit, a nominal wide run
    /// on the correspondingly reweighted graph — the kernel-level
    /// contract everything above (run_scenarios, sessions, bench
    /// assertions) builds on.
    #[test]
    fn scenario_lanes_equal_reweighted_reruns() {
        let sg = figure2();
        let borders = sg.border_events();
        let factors = [0.85f64, 1.0, 1.15];
        let structure = CyclicStructure::new(&sg);
        for backend in available_backends() {
            let mut wide = WideArena::with_kernel(backend);
            wide.run_scenarios_with(
                &sg,
                &structure,
                &borders,
                factors.len(),
                |arc, j| sg.arc(arc).delay().get() * factors[j],
                4,
                None,
            )
            .unwrap();
            assert_eq!(wide.lanes(), borders.len() * factors.len());
            for (j, &f) in factors.iter().enumerate() {
                let mut re = sg.clone();
                let arcs: Vec<_> = re.arc_ids().collect();
                for a in arcs {
                    let d = re.arc(a).delay().get() * f;
                    re.set_delay(a, d).unwrap();
                }
                let mut nominal = WideArena::with_kernel(backend);
                nominal.run(&re, &borders, 4).unwrap();
                for k in 0..borders.len() {
                    let lane = j * borders.len() + k;
                    assert_eq!(wide.origin(lane), borders[k]);
                    assert_eq!(wide.scenario_of(lane), j);
                    for e in sg.events() {
                        for p in 0..=4 {
                            assert_eq!(
                                wide.time(lane, e, p).map(f64::to_bits),
                                nominal.time(k, e, p).map(f64::to_bits),
                                "{backend} scenario {j} lane {k} e={} p={p}",
                                sg.label(e)
                            );
                        }
                    }
                }
            }
        }
    }

    /// A scenario matrix resumes from a dirty row after
    /// `set_scenario_delay` exactly like a from-scratch scenario run
    /// with the edited delay.
    #[test]
    fn scenario_resume_matches_from_scratch() {
        let sg = figure2();
        let borders = sg.border_events();
        let b = borders.len();
        let cm = sg.event_by_label("c-").unwrap();
        let ap = sg.event_by_label("a+").unwrap();
        let arc = sg.arc_between(cm, ap).unwrap();
        let structure = CyclicStructure::new(&sg);
        let slot = structure
            .in_arcs(ap)
            .iter()
            .position(|ia| ia.arc == arc)
            .map(|off| structure.offsets[ap.index()] as usize + off)
            .unwrap();
        const FACTORS: [f64; 3] = [0.9, 1.0, 1.2];
        let sgr = &sg;
        let delay_of = |edited: Option<(usize, f64)>| {
            move |a: ArcId, j: usize| match edited {
                Some((ea, d)) if ea == a.index() && j == 1 => d,
                _ => sgr.arc(a).delay().get() * FACTORS[j],
            }
        };
        for backend in available_backends() {
            let mut wide = WideArena::with_kernel(backend);
            wide.run_scenarios_with(
                &sg,
                &structure,
                &borders,
                FACTORS.len(),
                delay_of(None),
                5,
                None,
            )
            .unwrap();
            // Edit scenario 1's delay for the marked c- -> a+ arc and
            // resume from row 1 (the marked-arc dirty bound).
            wide.set_scenario_delay(slot, 1, 6.5);
            wide.rerun_rows_from(&structure, 1, None).unwrap();

            let mut fresh = WideArena::with_kernel(backend);
            fresh
                .run_scenarios_with(
                    &sg,
                    &structure,
                    &borders,
                    FACTORS.len(),
                    delay_of(Some((arc.index(), 6.5))),
                    5,
                    None,
                )
                .unwrap();
            for lane in 0..b * FACTORS.len() {
                for e in sg.events() {
                    for p in 0..=5 {
                        assert_eq!(
                            wide.time(lane, e, p).map(f64::to_bits),
                            fresh.time(lane, e, p).map(f64::to_bits),
                            "{backend} lane {lane} e={} p={p}",
                            sg.label(e)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn distance_series_into_reuses_the_buffer() {
        let sg = figure2();
        let borders = sg.border_events();
        let mut wide = WideArena::new();
        wide.run(&sg, &borders, 2).unwrap();
        let mut buf = Vec::with_capacity(8);
        let cap = buf.capacity();
        for k in 0..wide.lanes() {
            wide.distance_series_into(k, &mut buf);
            assert_eq!(buf, wide.distance_series(k));
            assert_eq!(buf.capacity(), cap, "no reallocation within capacity");
        }
    }

    #[test]
    fn kernel_backend_parses_and_displays_round_trip() {
        for b in [
            KernelBackend::Auto,
            KernelBackend::Portable,
            KernelBackend::Sse2,
            KernelBackend::Avx2,
        ] {
            assert_eq!(b.name().parse::<KernelBackend>(), Ok(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!("AVX2".parse::<KernelBackend>(), Ok(KernelBackend::Avx2));
        assert_eq!(
            "wide".parse::<KernelBackend>(),
            Err(UnknownKernel("wide".to_string()))
        );
        assert_eq!(KernelBackend::default(), KernelBackend::Auto);
    }

    #[test]
    fn resolution_never_yields_auto_and_portable_always_resolves() {
        let auto = KernelBackend::Auto.resolve().unwrap();
        assert_ne!(auto, KernelBackend::Auto);
        assert_eq!(
            KernelBackend::Portable.resolve(),
            Ok(KernelBackend::Portable)
        );
        // Lenient resolution agrees with strict wherever strict succeeds.
        assert_eq!(KernelBackend::Auto.resolve_lenient(), auto);
        for b in available_backends() {
            assert_eq!(b.resolve_lenient(), b);
        }
        // An arena never stores `Auto`.
        assert_ne!(WideArena::new().kernel(), KernelBackend::Auto);
        assert_ne!(AnalysisArena::new().kernel(), KernelBackend::Auto);
    }

    #[test]
    fn lane_storage_is_cache_line_aligned() {
        let sg = figure2();
        let mut wide = WideArena::new();
        wide.run(&sg, &sg.border_events(), 3).unwrap();
        assert_eq!(
            wide.times.as_slice().as_ptr() as usize % 64,
            0,
            "lane matrix must start on a cache-line boundary"
        );
    }

    #[test]
    fn aligned_vec_matches_vec_resize_semantics() {
        let mut aligned = AlignedF64Vec::new();
        let mut reference: Vec<f64> = Vec::new();
        for (len, value) in [(5usize, 1.0f64), (19, 2.0), (7, 3.0), (23, 4.0), (23, 5.0)] {
            aligned.resize(len, value);
            reference.resize(len, value);
            assert_eq!(aligned.as_slice(), &reference[..], "len {len}");
        }
        // Mutations through the slice persist across a growth.
        aligned.as_mut_slice()[0] = 9.5;
        reference[0] = 9.5;
        aligned.resize(40, 0.25);
        reference.resize(40, 0.25);
        assert_eq!(aligned.as_slice(), &reference[..]);
        assert!(aligned.capacity() >= 40);
    }

    /// The explicit-SIMD backends against the portable loop, cell for
    /// cell, at lane counts that exercise full vectors, masked AVX2
    /// tails (1..=3 remainder lanes) and the SSE2 scalar tail.
    #[test]
    fn simd_backends_match_portable_at_every_remainder_width() {
        let sg = {
            let mut b = SignalGraph::builder();
            let evs: Vec<_> = (0..9).map(|i| b.event(&format!("n{i}"))).collect();
            for w in evs.windows(2) {
                b.arc(w[0], w[1], 1.0 + (w[0].index() % 3) as f64 * 0.5);
            }
            b.marked_arc(evs[8], evs[0], 2.0);
            b.marked_arc(evs[3], evs[4], 0.75);
            b.build().unwrap()
        };
        let repetitive: Vec<EventId> = sg.events().filter(|&e| sg.is_repetitive(e)).collect();
        for lanes in [1usize, 2, 3, 4, 5, 6, 7, 8, 9] {
            let origins = &repetitive[..lanes.min(repetitive.len())];
            let mut portable = WideArena::with_kernel(KernelBackend::Portable);
            portable.run(&sg, origins, 4).unwrap();
            for backend in available_backends() {
                let mut simd = WideArena::with_kernel(backend);
                simd.run(&sg, origins, 4).unwrap();
                assert_eq!(
                    simd.times
                        .as_slice()
                        .iter()
                        .map(|t| t.to_bits())
                        .collect::<Vec<_>>(),
                    portable
                        .times
                        .as_slice()
                        .iter()
                        .map(|t| t.to_bits())
                        .collect::<Vec<_>>(),
                    "{backend} with {lanes} lanes"
                );
            }
        }
    }
}
