//! Incremental construction of validated [`SignalGraph`]s.

use std::collections::HashMap;

use tsg_graph::{DiGraph, NodeId};

use crate::arc::{Arc, ArcId};
use crate::event::{EventId, EventKind, EventLabel};
use crate::graph::{EventNode, SignalGraph};
use crate::time::Delay;
use crate::validate::{self, ValidationError};

/// Builder for [`SignalGraph`]; created by [`SignalGraph::builder`].
///
/// Events are added with [`event`](Self::event) (repetitive),
/// [`initial_event`](Self::initial_event) and
/// [`finite_event`](Self::finite_event); arcs with [`arc`](Self::arc)
/// (plain), [`marked_arc`](Self::marked_arc) (carrying an initial token) and
/// [`disengageable_arc`](Self::disengageable_arc) (active once, for
/// prefix→repetitive constraints). [`build`](Self::build) validates the
/// paper's structural restrictions and returns the finished graph.
///
/// Labels passed as strings are parsed leniently: `"a+"`/`"a-"` become
/// signal transitions, anything else a bare label.
///
/// # Examples
///
/// The Figure 1b graph is built in `tsg-circuit`'s library; a minimal ring:
///
/// ```
/// use tsg_core::SignalGraph;
///
/// let mut b = SignalGraph::builder();
/// let up = b.event("clk+");
/// let down = b.event("clk-");
/// b.arc(up, down, 5.0);
/// b.marked_arc(down, up, 5.0);
/// let sg = b.build()?;
/// assert_eq!(sg.arc_count(), 2);
/// # Ok::<(), tsg_core::validate::ValidationError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct SignalGraphBuilder {
    events: Vec<EventNode>,
    arcs: Vec<Arc>,
    by_label: HashMap<String, EventId>,
    errors: Vec<ValidationError>,
}

impl SignalGraphBuilder {
    /// Creates an empty builder. Equivalent to [`SignalGraph::builder`].
    pub fn new() -> Self {
        Self::default()
    }

    fn add_event(&mut self, label: EventLabel, kind: EventKind) -> EventId {
        let id = EventId(self.events.len() as u32);
        let key = label.to_string();
        if self.by_label.insert(key.clone(), id).is_some() {
            self.errors.push(ValidationError::DuplicateLabel(key));
        }
        self.events.push(EventNode {
            label,
            kind,
            alive: true,
        });
        id
    }

    fn parse(&mut self, label: &str) -> EventLabel {
        label
            .parse()
            .unwrap_or_else(|_| EventLabel::bare(label.to_owned()))
    }

    /// Adds a repetitive event (`∈ A_r`) and returns its id.
    pub fn event(&mut self, label: &str) -> EventId {
        let l = self.parse(label);
        self.add_event(l, EventKind::Repetitive)
    }

    /// Adds an initial event (`∈ I`): occurs once, at time 0, uncaused.
    pub fn initial_event(&mut self, label: &str) -> EventId {
        let l = self.parse(label);
        self.add_event(l, EventKind::Initial)
    }

    /// Adds a finite event: occurs once, caused by other prefix events
    /// (like `f-` in Figure 1).
    pub fn finite_event(&mut self, label: &str) -> EventId {
        let l = self.parse(label);
        self.add_event(l, EventKind::Finite)
    }

    /// Adds an event with an explicit [`EventLabel`] and [`EventKind`].
    pub fn event_with(&mut self, label: EventLabel, kind: EventKind) -> EventId {
        self.add_event(label, kind)
    }

    fn push_arc(
        &mut self,
        src: EventId,
        dst: EventId,
        delay: f64,
        marked: bool,
        dis: bool,
    ) -> ArcId {
        let delay = match Delay::new(delay) {
            Ok(d) => d,
            Err(e) => {
                self.errors.push(ValidationError::InvalidDelay {
                    src,
                    dst,
                    source: e,
                });
                Delay::ZERO
            }
        };
        let id = ArcId(self.arcs.len() as u32);
        self.arcs.push(Arc::new(src, dst, delay, marked, dis));
        id
    }

    /// Adds a plain (unmarked) arc `src → dst` with the given delay.
    pub fn arc(&mut self, src: EventId, dst: EventId, delay: f64) -> ArcId {
        self.push_arc(src, dst, delay, false, false)
    }

    /// Adds an initially marked arc `src →• dst` (one token).
    pub fn marked_arc(&mut self, src: EventId, dst: EventId, delay: f64) -> ArcId {
        self.push_arc(src, dst, delay, true, false)
    }

    /// Adds a disengageable arc `src ⇥ dst`: it constrains only the first
    /// occurrence of `dst` and then disappears. `src` must be a prefix
    /// event (validated at [`build`](Self::build)).
    pub fn disengageable_arc(&mut self, src: EventId, dst: EventId, delay: f64) -> ArcId {
        self.push_arc(src, dst, delay, false, true)
    }

    /// Number of events added so far.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Number of arcs added so far.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// Validates and builds the graph.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidationError`] violated by the construction;
    /// see [`crate::validate`] for the full list of structural rules.
    pub fn build(self) -> Result<SignalGraph, ValidationError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        let mut graph = DiGraph::with_capacity(self.events.len(), self.arcs.len());
        for _ in 0..self.events.len() {
            graph.add_node();
        }
        let mut pair: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
        for (i, arc) in self.arcs.iter().enumerate() {
            graph.add_edge(NodeId(arc.src().0), NodeId(arc.dst().0));
            pair.entry((arc.src().0, arc.dst().0))
                .or_default()
                .push(i as u32);
        }
        let sg = SignalGraph {
            events: self.events,
            arcs: self.arcs,
            graph,
            by_label: self.by_label,
            pair,
        };
        validate::validate(&sg)?;
        Ok(sg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_minimal_ring() {
        let mut b = SignalGraphBuilder::new();
        let a = b.event("a");
        let c = b.event("b");
        b.arc(a, c, 1.0);
        b.marked_arc(c, a, 1.0);
        assert_eq!(b.event_count(), 2);
        assert_eq!(b.arc_count(), 2);
        assert!(b.build().is_ok());
    }

    #[test]
    fn duplicate_labels_rejected() {
        let mut b = SignalGraphBuilder::new();
        let a1 = b.event("a+");
        let a2 = b.event("a+");
        b.arc(a1, a2, 1.0);
        b.marked_arc(a2, a1, 1.0);
        assert!(matches!(b.build(), Err(ValidationError::DuplicateLabel(_))));
    }

    #[test]
    fn invalid_delay_rejected() {
        let mut b = SignalGraphBuilder::new();
        let a = b.event("a");
        let c = b.event("b");
        b.arc(a, c, -2.0);
        b.marked_arc(c, a, 1.0);
        assert!(matches!(
            b.build(),
            Err(ValidationError::InvalidDelay { .. })
        ));
    }

    #[test]
    fn bare_and_transition_labels_coexist() {
        let mut b = SignalGraphBuilder::new();
        let a = b.event("req+");
        let c = b.event("go");
        b.arc(a, c, 0.0);
        b.marked_arc(c, a, 0.0);
        let sg = b.build().unwrap();
        assert!(sg.label(a).polarity().is_some());
        assert!(sg.label(c).polarity().is_none());
    }
}
