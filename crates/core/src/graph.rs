//! The Timed Signal Graph: events, arcs, and structural queries.

use std::collections::HashMap;
use std::fmt::Write as _;

use tsg_graph::{DiGraph, EdgeId, NodeId};

use crate::arc::{Arc, ArcId};
use crate::builder::SignalGraphBuilder;
use crate::event::{EventId, EventKind, EventLabel};

/// A Timed Signal Graph (Sections III.A and III.C of the paper).
///
/// A Signal Graph is the tuple `⟨A, I, →, M, O⟩`: events `A` (split here
/// into repetitive, initial and finite [`EventKind`]s), initial events `I`,
/// the precedence relation `→` with its initial marking `M` and the set of
/// disengageable arcs `O`. A *Timed* Signal Graph additionally labels every
/// arc with a delay `δ ∈ [0, ∞)`.
///
/// Instances are created through [`SignalGraph::builder`], which validates
/// the structural restrictions the paper imposes (initial safety, liveness
/// of the cyclic part, well-formedness of the prefix). A successfully built
/// graph therefore always satisfies:
///
/// * the unmarked repetitive subgraph is acyclic (every cycle carries an
///   initial token — liveness),
/// * the repetitive subgraph is strongly connected,
/// * disengageable arcs lead from prefix events to repetitive events and
///   every prefix→repetitive arc is disengageable (well-formedness),
/// * marked arcs connect repetitive events only,
/// * initial events have no causes.
///
/// # Examples
///
/// Build the two-event oscillator `x+ ⇄ x-` with unit delays:
///
/// ```
/// use tsg_core::SignalGraph;
///
/// let mut b = SignalGraph::builder();
/// let xp = b.event("x+");
/// let xm = b.event("x-");
/// b.arc(xp, xm, 1.0);
/// b.marked_arc(xm, xp, 1.0);
/// let sg = b.build()?;
/// assert_eq!(sg.event_count(), 2);
/// assert_eq!(sg.border_events(), vec![xp]);
/// # Ok::<(), tsg_core::validate::ValidationError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SignalGraph {
    pub(crate) events: Vec<EventNode>,
    pub(crate) arcs: Vec<Arc>,
    pub(crate) graph: DiGraph,
    pub(crate) by_label: HashMap<String, EventId>,
    /// `(src, dst)` → live arc ids in insertion order; the adjacency
    /// index behind [`arc_between`](SignalGraph::arc_between).
    pub(crate) pair: HashMap<(u32, u32), Vec<u32>>,
}

#[derive(Clone, Debug)]
pub(crate) struct EventNode {
    pub(crate) label: EventLabel,
    pub(crate) kind: EventKind,
    /// `false` once removed; the slot stays so [`EventId`]s never shift.
    pub(crate) alive: bool,
}

/// Alias emphasising that delays are part of the model, matching the
/// paper's terminology.
pub type TimedSignalGraph = SignalGraph;

/// The repetitive (cyclic) subgraph of a [`SignalGraph`] with local dense
/// ids, produced by [`SignalGraph::repetitive_view`].
///
/// Local node `i` corresponds to `events[i]`; local edge `j` corresponds to
/// `arcs[j]` of the original graph.
#[derive(Clone, Debug)]
pub struct RepetitiveView {
    /// The induced subgraph (nodes/edges use local ids).
    pub graph: DiGraph,
    /// Local node index → original event.
    pub events: Vec<EventId>,
    /// Local edge index → original arc.
    pub arcs: Vec<ArcId>,
    to_local: Vec<usize>,
}

impl RepetitiveView {
    /// The local node id of `e`, if `e` is repetitive.
    pub fn local(&self, e: EventId) -> Option<NodeId> {
        match self.to_local.get(e.index()).copied() {
            Some(usize::MAX) | None => None,
            Some(i) => Some(NodeId(i as u32)),
        }
    }
}

impl SignalGraph {
    /// Starts building a graph.
    pub fn builder() -> SignalGraphBuilder {
        SignalGraphBuilder::new()
    }

    /// Number of events (`|A|`).
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Number of arcs (`m` in the complexity analysis).
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// Number of repetitive events (`|A_r|`); removed events do not
    /// count.
    pub fn repetitive_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.alive && e.kind == EventKind::Repetitive)
            .count()
    }

    /// Number of live (non-removed) events. [`event_count`]
    /// (Self::event_count) stays the raw id bound, which removal never
    /// shrinks.
    pub fn live_event_count(&self) -> usize {
        self.events.iter().filter(|e| e.alive).count()
    }

    /// Number of live (non-removed) arcs. [`arc_count`]
    /// (Self::arc_count) stays the raw id bound, which removal never
    /// shrinks.
    pub fn live_arc_count(&self) -> usize {
        self.arcs.iter().filter(|a| a.is_alive()).count()
    }

    /// `true` when `e` is an event of this graph and has not been
    /// removed.
    pub fn is_live_event(&self, e: EventId) -> bool {
        self.events.get(e.index()).is_some_and(|n| n.alive)
    }

    /// `true` when `a` is an arc of this graph and has not been
    /// removed.
    pub fn is_live_arc(&self, a: ArcId) -> bool {
        self.arcs.get(a.index()).is_some_and(|x| x.is_alive())
    }

    /// The label of `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not an event of this graph.
    pub fn label(&self, e: EventId) -> &EventLabel {
        &self.events[e.index()].label
    }

    /// The kind of `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not an event of this graph.
    pub fn kind(&self, e: EventId) -> EventKind {
        self.events[e.index()].kind
    }

    /// `true` when `e` is repetitive (`e ∈ A_r`). Removed events are
    /// never repetitive, so every border/cyclic-structure filter built
    /// on this predicate skips tombstones automatically.
    pub fn is_repetitive(&self, e: EventId) -> bool {
        let node = &self.events[e.index()];
        node.alive && node.kind == EventKind::Repetitive
    }

    /// Looks up an event by its display label (e.g. `"a+"`).
    pub fn event_by_label(&self, label: &str) -> Option<EventId> {
        self.by_label.get(label).copied()
    }

    /// Iterator over all event ids in insertion order.
    pub fn events(&self) -> impl ExactSizeIterator<Item = EventId> + '_ {
        (0..self.events.len() as u32).map(EventId)
    }

    /// Iterator over the repetitive events.
    pub fn repetitive_events(&self) -> impl Iterator<Item = EventId> + '_ {
        self.events().filter(|&e| self.is_repetitive(e))
    }

    /// Iterator over the live prefix (initial + finite) events.
    pub fn prefix_events(&self) -> impl Iterator<Item = EventId> + '_ {
        self.events().filter(|&e| {
            let node = &self.events[e.index()];
            node.alive && node.kind.is_prefix()
        })
    }

    /// Iterator over all arc ids in insertion order.
    pub fn arc_ids(&self) -> impl ExactSizeIterator<Item = ArcId> + '_ {
        (0..self.arcs.len() as u32).map(ArcId)
    }

    /// The arc with id `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not an arc of this graph.
    pub fn arc(&self, a: ArcId) -> &Arc {
        &self.arcs[a.index()]
    }

    /// All arcs, indexed by [`ArcId`].
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// Replaces the delay of arc `a` — the mutation behind
    /// [`AnalysisSession`](crate::analysis::session::AnalysisSession)
    /// delta queries and the `design_space` sweep.
    ///
    /// Only the delay label changes; the structure the builder validated
    /// (topology, marking, disengageability) is untouched, so every
    /// structural invariant of a built graph keeps holding.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDelay`](crate::time::InvalidDelay) for negative,
    /// infinite or NaN delays.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not an arc of this graph.
    pub fn set_delay(&mut self, a: ArcId, delay: f64) -> Result<(), crate::time::InvalidDelay> {
        let delay = crate::time::Delay::new(delay)?;
        self.arcs[a.index()].set_delay(delay);
        Ok(())
    }

    /// Adds a repetitive event with a fresh dense [`EventId`]
    /// (`event_count()` before the call). Labels are parsed leniently
    /// like the builder's: `"a+"`/`"a-"` become signal transitions,
    /// anything else a bare label.
    ///
    /// Structural mutations check per-operation rules only; batch-level
    /// invariants (liveness, strong connectivity of the cyclic part)
    /// are re-checked by [`validate`](Self::validate), which
    /// [`AnalysisSession::edit_structure`]
    /// (crate::analysis::session::AnalysisSession::edit_structure)
    /// runs after applying a whole edit batch.
    ///
    /// # Errors
    ///
    /// Returns [`ValidationError::DuplicateLabel`] when a live event
    /// already carries the label (labels of removed events are
    /// reusable).
    pub fn add_event(&mut self, label: &str) -> Result<EventId, crate::validate::ValidationError> {
        use crate::validate::ValidationError;
        let parsed: EventLabel = label
            .parse()
            .unwrap_or_else(|_| EventLabel::bare(label.to_owned()));
        let key = parsed.to_string();
        if self.by_label.contains_key(&key) {
            return Err(ValidationError::DuplicateLabel(key));
        }
        let id = EventId(self.events.len() as u32);
        self.by_label.insert(key, id);
        self.events.push(EventNode {
            label: parsed,
            kind: EventKind::Repetitive,
            alive: true,
        });
        self.graph.add_node();
        Ok(id)
    }

    /// Removes event `e`: its id slot becomes a tombstone (no other
    /// [`EventId`] shifts) and its label is free for reuse. The event
    /// must have no remaining live arcs — remove those first.
    ///
    /// # Errors
    ///
    /// Returns [`ValidationError::UnknownEvent`] for an out-of-range or
    /// already-removed id, [`ValidationError::EventHasArcs`] when live
    /// arcs still touch `e`.
    pub fn remove_event(&mut self, e: EventId) -> Result<(), crate::validate::ValidationError> {
        use crate::validate::ValidationError;
        if !self.is_live_event(e) {
            return Err(ValidationError::UnknownEvent(e));
        }
        if self.in_arcs(e).next().is_some() || self.out_arcs(e).next().is_some() {
            return Err(ValidationError::EventHasArcs(e));
        }
        let node = &mut self.events[e.index()];
        node.alive = false;
        let key = node.label.to_string();
        if self.by_label.get(&key) == Some(&e) {
            self.by_label.remove(&key);
        }
        Ok(())
    }

    /// Adds an arc `src → dst` with the given delay, optionally
    /// carrying an initial token, and returns its fresh dense [`ArcId`]
    /// (`arc_count()` before the call).
    ///
    /// Per-operation rules mirror the builder's arc rules: both
    /// endpoints must be live, marked arcs must connect repetitive
    /// events, and prefix↔repetitive arcs are rejected (a plain
    /// prefix→repetitive arc would deadlock the destination's second
    /// occurrence; repetitive→prefix is forbidden outright). Batch
    /// invariants — every cycle still carries a token, the cyclic part
    /// stays strongly connected — are [`validate`](Self::validate)'s
    /// job after the whole batch.
    ///
    /// # Errors
    ///
    /// Returns [`ValidationError::UnknownEvent`] for a dead or
    /// out-of-range endpoint, [`ValidationError::InvalidDelay`],
    /// [`ValidationError::MarkedArcOutsideCycle`],
    /// [`ValidationError::RepetitiveBeforePrefix`] or
    /// [`ValidationError::PrefixArcNotDisengageable`].
    pub fn add_arc(
        &mut self,
        src: EventId,
        dst: EventId,
        delay: f64,
        marked: bool,
    ) -> Result<ArcId, crate::validate::ValidationError> {
        use crate::validate::ValidationError;
        if !self.is_live_event(src) {
            return Err(ValidationError::UnknownEvent(src));
        }
        if !self.is_live_event(dst) {
            return Err(ValidationError::UnknownEvent(dst));
        }
        let delay = crate::time::Delay::new(delay)
            .map_err(|source| ValidationError::InvalidDelay { src, dst, source })?;
        let (src_rep, dst_rep) = (self.is_repetitive(src), self.is_repetitive(dst));
        if src_rep && !dst_rep {
            return Err(ValidationError::RepetitiveBeforePrefix { src, dst });
        }
        if marked && !(src_rep && dst_rep) {
            return Err(ValidationError::MarkedArcOutsideCycle { src, dst });
        }
        if !src_rep && dst_rep {
            return Err(ValidationError::PrefixArcNotDisengageable { src, dst });
        }
        let id = ArcId(self.arcs.len() as u32);
        self.arcs.push(Arc::new(src, dst, delay, marked, false));
        self.graph.add_edge(NodeId(src.0), NodeId(dst.0));
        self.pair.entry((src.0, dst.0)).or_default().push(id.0);
        Ok(id)
    }

    /// Removes arc `a`: its id slot becomes a tombstone reading as
    /// unmarked and non-disengageable (no other [`ArcId`] shifts), it
    /// disappears from [`in_arcs`](Self::in_arcs)/[`out_arcs`]
    /// (Self::out_arcs)/[`arc_between`](Self::arc_between), and its
    /// endpoint record survives for diagnostics.
    ///
    /// # Errors
    ///
    /// Returns [`ValidationError::UnknownArc`] for an out-of-range or
    /// already-removed id.
    pub fn remove_arc(&mut self, a: ArcId) -> Result<(), crate::validate::ValidationError> {
        use crate::validate::ValidationError;
        if !self.is_live_arc(a) {
            return Err(ValidationError::UnknownArc(a));
        }
        let (src, dst) = {
            let arc = &self.arcs[a.index()];
            (arc.src(), arc.dst())
        };
        self.graph.remove_edge(EdgeId(a.0));
        if let Some(ids) = self.pair.get_mut(&(src.0, dst.0)) {
            ids.retain(|&i| i != a.0);
            if ids.is_empty() {
                self.pair.remove(&(src.0, dst.0));
            }
        }
        self.arcs[a.index()].kill();
        Ok(())
    }

    /// Re-checks every structural rule the builder enforced, skipping
    /// tombstones — the batch-level gate after a sequence of
    /// [`add_arc`](Self::add_arc)/[`remove_arc`](Self::remove_arc)/
    /// [`add_event`](Self::add_event)/[`remove_event`]
    /// (Self::remove_event) mutations.
    ///
    /// # Errors
    ///
    /// Returns the first violated rule; see [`crate::validate`].
    pub fn validate(&self) -> Result<(), crate::validate::ValidationError> {
        crate::validate::validate(self)
    }

    /// The first live arc (in insertion order) leading from `src` to
    /// `dst`, if any — how label-addressed edits (`tsg explore --edit
    /// "a+->b+=3"`, the serve tier's structural ops) resolve to an
    /// [`ArcId`]. An `O(1)` lookup in the `(src, dst)` adjacency index,
    /// maintained by [`add_arc`](Self::add_arc)/[`remove_arc`]
    /// (Self::remove_arc) — this runs once per edit in the hot explore
    /// loop, where the old linear scan over all arcs was measurable.
    pub fn arc_between(&self, src: EventId, dst: EventId) -> Option<ArcId> {
        self.pair
            .get(&(src.0, dst.0))
            .and_then(|v| v.first())
            .map(|&i| ArcId(i))
    }

    /// Arcs entering `e`.
    pub fn in_arcs(&self, e: EventId) -> impl Iterator<Item = ArcId> + '_ {
        self.graph
            .in_edges(NodeId(e.0))
            .iter()
            .map(|&EdgeId(i)| ArcId(i))
    }

    /// Arcs leaving `e`.
    pub fn out_arcs(&self, e: EventId) -> impl Iterator<Item = ArcId> + '_ {
        self.graph
            .out_edges(NodeId(e.0))
            .iter()
            .map(|&EdgeId(i)| ArcId(i))
    }

    /// The *border events*: repetitive events with at least one initially
    /// marked in-arc (Section VI.A).
    ///
    /// The border set is a cut set of all cycles of a live Signal Graph —
    /// every cycle carries a token, and the head of each marked arc is a
    /// border event — so the cycle-time algorithm only initiates timing
    /// simulations from these events.
    pub fn border_events(&self) -> Vec<EventId> {
        self.events()
            .filter(|&e| self.is_repetitive(e) && self.in_arcs(e).any(|a| self.arc(a).is_marked()))
            .collect()
    }

    /// The underlying [`DiGraph`]: node `i` is event `i`, edge `j` is arc
    /// `j`. Exposed so graph algorithms can run directly on the structure.
    pub fn digraph(&self) -> &DiGraph {
        &self.graph
    }

    /// Sum of the delays of `arcs`.
    pub fn path_length(&self, arcs: &[ArcId]) -> f64 {
        arcs.iter().map(|&a| self.arc(a).delay().get()).sum()
    }

    /// Number of marked arcs among `arcs` — for a cycle this is its
    /// *occurrence period* `ε` (Section V.A).
    pub fn occurrence_period(&self, arcs: &[ArcId]) -> u32 {
        arcs.iter().filter(|&&a| self.arc(a).is_marked()).count() as u32
    }

    /// `true` when every live arc's delay is an exact integer (enables
    /// exact rational cycle times).
    pub fn has_integral_delays(&self) -> bool {
        self.arcs
            .iter()
            .all(|a| !a.is_alive() || a.delay().is_integral())
    }

    /// Projects out the cyclic part: the subgraph induced by the repetitive
    /// events. All cycles of the Signal Graph live in this view, so the
    /// maximum-cycle-ratio baselines operate on it directly.
    pub fn repetitive_view(&self) -> RepetitiveView {
        let events: Vec<EventId> = self.repetitive_events().collect();
        let mut to_local = vec![usize::MAX; self.event_count()];
        for (i, &e) in events.iter().enumerate() {
            to_local[e.index()] = i;
        }
        let mut graph = DiGraph::with_capacity(events.len(), self.arc_count());
        for _ in 0..events.len() {
            graph.add_node();
        }
        let mut arcs = Vec::new();
        for a in self.arc_ids() {
            let arc = self.arc(a);
            if !arc.is_alive() {
                continue;
            }
            let (s, d) = (to_local[arc.src().index()], to_local[arc.dst().index()]);
            if s != usize::MAX && d != usize::MAX {
                graph.add_edge(NodeId(s as u32), NodeId(d as u32));
                arcs.push(a);
            }
        }
        RepetitiveView {
            graph,
            events,
            arcs,
            to_local,
        }
    }

    /// Renders a path or cycle as `a+ -3-> c+ -2-> a-`.
    pub fn display_path(&self, arcs: &[ArcId]) -> String {
        let mut s = String::new();
        for (i, &a) in arcs.iter().enumerate() {
            let arc = self.arc(a);
            if i == 0 {
                let _ = write!(s, "{}", self.label(arc.src()));
            }
            let _ = write!(
                s,
                " -{}{}-> {}",
                arc.delay(),
                if arc.is_marked() { "*" } else { "" },
                self.label(arc.dst())
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_phase() -> SignalGraph {
        let mut b = SignalGraph::builder();
        let xp = b.event("x+");
        let xm = b.event("x-");
        b.arc(xp, xm, 1.0);
        b.marked_arc(xm, xp, 2.0);
        b.build().unwrap()
    }

    #[test]
    fn counts_and_lookup() {
        let sg = two_phase();
        assert_eq!(sg.event_count(), 2);
        assert_eq!(sg.arc_count(), 2);
        assert_eq!(sg.repetitive_count(), 2);
        let xp = sg.event_by_label("x+").unwrap();
        assert_eq!(sg.label(xp).to_string(), "x+");
        assert!(sg.is_repetitive(xp));
        assert!(sg.event_by_label("y+").is_none());
    }

    #[test]
    fn border_set_is_marked_heads() {
        let sg = two_phase();
        let xp = sg.event_by_label("x+").unwrap();
        assert_eq!(sg.border_events(), vec![xp]);
    }

    #[test]
    fn arc_iteration() {
        let sg = two_phase();
        let xm = sg.event_by_label("x-").unwrap();
        let ins: Vec<_> = sg.in_arcs(xm).collect();
        assert_eq!(ins.len(), 1);
        assert_eq!(sg.arc(ins[0]).src(), sg.event_by_label("x+").unwrap());
        let outs: Vec<_> = sg.out_arcs(xm).collect();
        assert_eq!(outs.len(), 1);
        assert!(sg.arc(outs[0]).is_marked());
    }

    #[test]
    fn path_metrics() {
        let sg = two_phase();
        let all: Vec<_> = sg.arc_ids().collect();
        assert_eq!(sg.path_length(&all), 3.0);
        assert_eq!(sg.occurrence_period(&all), 1);
        assert!(sg.has_integral_delays());
    }

    #[test]
    fn display_path_format() {
        let sg = two_phase();
        let all: Vec<_> = sg.arc_ids().collect();
        assert_eq!(sg.display_path(&all), "x+ -1-> x- -2*-> x+");
    }

    #[test]
    fn arc_between_uses_first_live_parallel_arc() {
        let mut b = SignalGraph::builder();
        let a = b.event("a");
        let c = b.event("b");
        let first = b.arc(a, c, 1.0);
        let second = b.arc(a, c, 2.0);
        b.marked_arc(c, a, 1.0);
        let mut sg = b.build().unwrap();
        assert_eq!(sg.arc_between(a, c), Some(first));
        sg.remove_arc(first).unwrap();
        assert_eq!(sg.arc_between(a, c), Some(second));
        sg.remove_arc(second).unwrap();
        assert_eq!(sg.arc_between(a, c), None);
    }

    #[test]
    fn add_and_remove_arc_keep_ids_stable() {
        let mut sg = two_phase();
        let xp = sg.event_by_label("x+").unwrap();
        let xm = sg.event_by_label("x-").unwrap();
        let extra = sg.add_arc(xp, xm, 4.0, false).unwrap();
        assert_eq!(extra, ArcId(2), "dense id continues after the builder");
        assert_eq!(sg.arc_count(), 3);
        assert_eq!(sg.live_arc_count(), 3);
        sg.remove_arc(extra).unwrap();
        assert_eq!(sg.arc_count(), 3, "tombstone keeps the slot");
        assert_eq!(sg.live_arc_count(), 2);
        assert!(!sg.is_live_arc(extra));
        assert!(sg.in_arcs(xm).all(|a| a != extra));
        assert_eq!(
            sg.remove_arc(extra).unwrap_err(),
            crate::validate::ValidationError::UnknownArc(extra)
        );
        // The original arcs and the validation invariants are intact.
        assert!(sg.validate().is_ok());
    }

    #[test]
    fn add_event_rules_and_label_reuse() {
        let mut sg = two_phase();
        assert!(matches!(
            sg.add_event("x+"),
            Err(crate::validate::ValidationError::DuplicateLabel(_))
        ));
        let y = sg.add_event("y").unwrap();
        assert_eq!(y, EventId(2));
        assert!(sg.is_repetitive(y));
        // A bare new event has no arcs: removable, and its label frees up.
        sg.remove_event(y).unwrap();
        assert!(!sg.is_live_event(y));
        assert!(sg.event_by_label("y").is_none());
        assert_eq!(sg.live_event_count(), 2);
        assert_eq!(sg.add_event("y").unwrap(), EventId(3));
    }

    #[test]
    fn remove_event_refuses_while_arcs_remain() {
        let mut sg = two_phase();
        let xp = sg.event_by_label("x+").unwrap();
        assert_eq!(
            sg.remove_event(xp).unwrap_err(),
            crate::validate::ValidationError::EventHasArcs(xp)
        );
        assert!(sg.is_live_event(xp));
    }

    #[test]
    fn add_arc_rejects_rule_violations() {
        use crate::validate::ValidationError;
        let mut b = SignalGraph::builder();
        let i = b.initial_event("go");
        let xp = b.event("x+");
        let xm = b.event("x-");
        b.disengageable_arc(i, xp, 1.0);
        b.arc(xp, xm, 1.0);
        b.marked_arc(xm, xp, 1.0);
        let mut sg = b.build().unwrap();
        assert!(matches!(
            sg.add_arc(xp, i, 1.0, false),
            Err(ValidationError::RepetitiveBeforePrefix { .. })
        ));
        assert!(matches!(
            sg.add_arc(i, xp, 1.0, false),
            Err(ValidationError::PrefixArcNotDisengageable { .. })
        ));
        assert!(matches!(
            sg.add_arc(i, xp, 1.0, true),
            Err(ValidationError::MarkedArcOutsideCycle { .. })
        ));
        assert!(matches!(
            sg.add_arc(xp, xm, -1.0, false),
            Err(ValidationError::InvalidDelay { .. })
        ));
        assert!(matches!(
            sg.add_arc(EventId(99), xm, 1.0, false),
            Err(ValidationError::UnknownEvent(_))
        ));
    }

    #[test]
    fn structural_queries_skip_tombstones() {
        let mut sg = two_phase();
        let xp = sg.event_by_label("x+").unwrap();
        let xm = sg.event_by_label("x-").unwrap();
        // Insert a pipeline stage: x+ -> s -> x- replaces x+ -> x-.
        let s = sg.add_event("s").unwrap();
        let old = sg.arc_between(xp, xm).unwrap();
        sg.remove_arc(old).unwrap();
        sg.add_arc(xp, s, 0.5, false).unwrap();
        sg.add_arc(s, xm, 0.5, true).unwrap();
        assert!(sg.validate().is_ok());
        assert_eq!(sg.repetitive_count(), 3);
        // The border now includes s (head of the new marked arc).
        assert_eq!(sg.border_events(), vec![xp, xm]);
        let view = sg.repetitive_view();
        assert_eq!(view.arcs.len(), 3, "dead arc excluded from the view");
        assert!(!sg.has_integral_delays());
    }
}
