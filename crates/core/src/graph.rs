//! The Timed Signal Graph: events, arcs, and structural queries.

use std::collections::HashMap;
use std::fmt::Write as _;

use tsg_graph::{DiGraph, EdgeId, NodeId};

use crate::arc::{Arc, ArcId};
use crate::builder::SignalGraphBuilder;
use crate::event::{EventId, EventKind, EventLabel};

/// A Timed Signal Graph (Sections III.A and III.C of the paper).
///
/// A Signal Graph is the tuple `⟨A, I, →, M, O⟩`: events `A` (split here
/// into repetitive, initial and finite [`EventKind`]s), initial events `I`,
/// the precedence relation `→` with its initial marking `M` and the set of
/// disengageable arcs `O`. A *Timed* Signal Graph additionally labels every
/// arc with a delay `δ ∈ [0, ∞)`.
///
/// Instances are created through [`SignalGraph::builder`], which validates
/// the structural restrictions the paper imposes (initial safety, liveness
/// of the cyclic part, well-formedness of the prefix). A successfully built
/// graph therefore always satisfies:
///
/// * the unmarked repetitive subgraph is acyclic (every cycle carries an
///   initial token — liveness),
/// * the repetitive subgraph is strongly connected,
/// * disengageable arcs lead from prefix events to repetitive events and
///   every prefix→repetitive arc is disengageable (well-formedness),
/// * marked arcs connect repetitive events only,
/// * initial events have no causes.
///
/// # Examples
///
/// Build the two-event oscillator `x+ ⇄ x-` with unit delays:
///
/// ```
/// use tsg_core::SignalGraph;
///
/// let mut b = SignalGraph::builder();
/// let xp = b.event("x+");
/// let xm = b.event("x-");
/// b.arc(xp, xm, 1.0);
/// b.marked_arc(xm, xp, 1.0);
/// let sg = b.build()?;
/// assert_eq!(sg.event_count(), 2);
/// assert_eq!(sg.border_events(), vec![xp]);
/// # Ok::<(), tsg_core::validate::ValidationError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SignalGraph {
    pub(crate) events: Vec<EventNode>,
    pub(crate) arcs: Vec<Arc>,
    pub(crate) graph: DiGraph,
    pub(crate) by_label: HashMap<String, EventId>,
}

#[derive(Clone, Debug)]
pub(crate) struct EventNode {
    pub(crate) label: EventLabel,
    pub(crate) kind: EventKind,
}

/// Alias emphasising that delays are part of the model, matching the
/// paper's terminology.
pub type TimedSignalGraph = SignalGraph;

/// The repetitive (cyclic) subgraph of a [`SignalGraph`] with local dense
/// ids, produced by [`SignalGraph::repetitive_view`].
///
/// Local node `i` corresponds to `events[i]`; local edge `j` corresponds to
/// `arcs[j]` of the original graph.
#[derive(Clone, Debug)]
pub struct RepetitiveView {
    /// The induced subgraph (nodes/edges use local ids).
    pub graph: DiGraph,
    /// Local node index → original event.
    pub events: Vec<EventId>,
    /// Local edge index → original arc.
    pub arcs: Vec<ArcId>,
    to_local: Vec<usize>,
}

impl RepetitiveView {
    /// The local node id of `e`, if `e` is repetitive.
    pub fn local(&self, e: EventId) -> Option<NodeId> {
        match self.to_local.get(e.index()).copied() {
            Some(usize::MAX) | None => None,
            Some(i) => Some(NodeId(i as u32)),
        }
    }
}

impl SignalGraph {
    /// Starts building a graph.
    pub fn builder() -> SignalGraphBuilder {
        SignalGraphBuilder::new()
    }

    /// Number of events (`|A|`).
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Number of arcs (`m` in the complexity analysis).
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// Number of repetitive events (`|A_r|`).
    pub fn repetitive_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == EventKind::Repetitive)
            .count()
    }

    /// The label of `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not an event of this graph.
    pub fn label(&self, e: EventId) -> &EventLabel {
        &self.events[e.index()].label
    }

    /// The kind of `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not an event of this graph.
    pub fn kind(&self, e: EventId) -> EventKind {
        self.events[e.index()].kind
    }

    /// `true` when `e` is repetitive (`e ∈ A_r`).
    pub fn is_repetitive(&self, e: EventId) -> bool {
        self.kind(e) == EventKind::Repetitive
    }

    /// Looks up an event by its display label (e.g. `"a+"`).
    pub fn event_by_label(&self, label: &str) -> Option<EventId> {
        self.by_label.get(label).copied()
    }

    /// Iterator over all event ids in insertion order.
    pub fn events(&self) -> impl ExactSizeIterator<Item = EventId> + '_ {
        (0..self.events.len() as u32).map(EventId)
    }

    /// Iterator over the repetitive events.
    pub fn repetitive_events(&self) -> impl Iterator<Item = EventId> + '_ {
        self.events().filter(|&e| self.is_repetitive(e))
    }

    /// Iterator over the prefix (initial + finite) events.
    pub fn prefix_events(&self) -> impl Iterator<Item = EventId> + '_ {
        self.events().filter(|&e| !self.is_repetitive(e))
    }

    /// Iterator over all arc ids in insertion order.
    pub fn arc_ids(&self) -> impl ExactSizeIterator<Item = ArcId> + '_ {
        (0..self.arcs.len() as u32).map(ArcId)
    }

    /// The arc with id `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not an arc of this graph.
    pub fn arc(&self, a: ArcId) -> &Arc {
        &self.arcs[a.index()]
    }

    /// All arcs, indexed by [`ArcId`].
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// Replaces the delay of arc `a` — the mutation behind
    /// [`AnalysisSession`](crate::analysis::session::AnalysisSession)
    /// delta queries and the `design_space` sweep.
    ///
    /// Only the delay label changes; the structure the builder validated
    /// (topology, marking, disengageability) is untouched, so every
    /// structural invariant of a built graph keeps holding.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDelay`](crate::time::InvalidDelay) for negative,
    /// infinite or NaN delays.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not an arc of this graph.
    pub fn set_delay(&mut self, a: ArcId, delay: f64) -> Result<(), crate::time::InvalidDelay> {
        let delay = crate::time::Delay::new(delay)?;
        self.arcs[a.index()].set_delay(delay);
        Ok(())
    }

    /// The first arc (in insertion order) leading from `src` to `dst`,
    /// if any — how label-addressed delay edits (`tsg explore --edit
    /// "a+->b+=3"`) resolve to an [`ArcId`].
    pub fn arc_between(&self, src: EventId, dst: EventId) -> Option<ArcId> {
        self.out_arcs(src).find(|&a| self.arc(a).dst() == dst)
    }

    /// Arcs entering `e`.
    pub fn in_arcs(&self, e: EventId) -> impl Iterator<Item = ArcId> + '_ {
        self.graph
            .in_edges(NodeId(e.0))
            .iter()
            .map(|&EdgeId(i)| ArcId(i))
    }

    /// Arcs leaving `e`.
    pub fn out_arcs(&self, e: EventId) -> impl Iterator<Item = ArcId> + '_ {
        self.graph
            .out_edges(NodeId(e.0))
            .iter()
            .map(|&EdgeId(i)| ArcId(i))
    }

    /// The *border events*: repetitive events with at least one initially
    /// marked in-arc (Section VI.A).
    ///
    /// The border set is a cut set of all cycles of a live Signal Graph —
    /// every cycle carries a token, and the head of each marked arc is a
    /// border event — so the cycle-time algorithm only initiates timing
    /// simulations from these events.
    pub fn border_events(&self) -> Vec<EventId> {
        self.events()
            .filter(|&e| self.is_repetitive(e) && self.in_arcs(e).any(|a| self.arc(a).is_marked()))
            .collect()
    }

    /// The underlying [`DiGraph`]: node `i` is event `i`, edge `j` is arc
    /// `j`. Exposed so graph algorithms can run directly on the structure.
    pub fn digraph(&self) -> &DiGraph {
        &self.graph
    }

    /// Sum of the delays of `arcs`.
    pub fn path_length(&self, arcs: &[ArcId]) -> f64 {
        arcs.iter().map(|&a| self.arc(a).delay().get()).sum()
    }

    /// Number of marked arcs among `arcs` — for a cycle this is its
    /// *occurrence period* `ε` (Section V.A).
    pub fn occurrence_period(&self, arcs: &[ArcId]) -> u32 {
        arcs.iter().filter(|&&a| self.arc(a).is_marked()).count() as u32
    }

    /// `true` when every delay is an exact integer (enables exact rational
    /// cycle times).
    pub fn has_integral_delays(&self) -> bool {
        self.arcs.iter().all(|a| a.delay().is_integral())
    }

    /// Projects out the cyclic part: the subgraph induced by the repetitive
    /// events. All cycles of the Signal Graph live in this view, so the
    /// maximum-cycle-ratio baselines operate on it directly.
    pub fn repetitive_view(&self) -> RepetitiveView {
        let events: Vec<EventId> = self.repetitive_events().collect();
        let mut to_local = vec![usize::MAX; self.event_count()];
        for (i, &e) in events.iter().enumerate() {
            to_local[e.index()] = i;
        }
        let mut graph = DiGraph::with_capacity(events.len(), self.arc_count());
        for _ in 0..events.len() {
            graph.add_node();
        }
        let mut arcs = Vec::new();
        for a in self.arc_ids() {
            let arc = self.arc(a);
            let (s, d) = (to_local[arc.src().index()], to_local[arc.dst().index()]);
            if s != usize::MAX && d != usize::MAX {
                graph.add_edge(NodeId(s as u32), NodeId(d as u32));
                arcs.push(a);
            }
        }
        RepetitiveView {
            graph,
            events,
            arcs,
            to_local,
        }
    }

    /// Renders a path or cycle as `a+ -3-> c+ -2-> a-`.
    pub fn display_path(&self, arcs: &[ArcId]) -> String {
        let mut s = String::new();
        for (i, &a) in arcs.iter().enumerate() {
            let arc = self.arc(a);
            if i == 0 {
                let _ = write!(s, "{}", self.label(arc.src()));
            }
            let _ = write!(
                s,
                " -{}{}-> {}",
                arc.delay(),
                if arc.is_marked() { "*" } else { "" },
                self.label(arc.dst())
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_phase() -> SignalGraph {
        let mut b = SignalGraph::builder();
        let xp = b.event("x+");
        let xm = b.event("x-");
        b.arc(xp, xm, 1.0);
        b.marked_arc(xm, xp, 2.0);
        b.build().unwrap()
    }

    #[test]
    fn counts_and_lookup() {
        let sg = two_phase();
        assert_eq!(sg.event_count(), 2);
        assert_eq!(sg.arc_count(), 2);
        assert_eq!(sg.repetitive_count(), 2);
        let xp = sg.event_by_label("x+").unwrap();
        assert_eq!(sg.label(xp).to_string(), "x+");
        assert!(sg.is_repetitive(xp));
        assert!(sg.event_by_label("y+").is_none());
    }

    #[test]
    fn border_set_is_marked_heads() {
        let sg = two_phase();
        let xp = sg.event_by_label("x+").unwrap();
        assert_eq!(sg.border_events(), vec![xp]);
    }

    #[test]
    fn arc_iteration() {
        let sg = two_phase();
        let xm = sg.event_by_label("x-").unwrap();
        let ins: Vec<_> = sg.in_arcs(xm).collect();
        assert_eq!(ins.len(), 1);
        assert_eq!(sg.arc(ins[0]).src(), sg.event_by_label("x+").unwrap());
        let outs: Vec<_> = sg.out_arcs(xm).collect();
        assert_eq!(outs.len(), 1);
        assert!(sg.arc(outs[0]).is_marked());
    }

    #[test]
    fn path_metrics() {
        let sg = two_phase();
        let all: Vec<_> = sg.arc_ids().collect();
        assert_eq!(sg.path_length(&all), 3.0);
        assert_eq!(sg.occurrence_period(&all), 1);
        assert!(sg.has_integral_delays());
    }

    #[test]
    fn display_path_format() {
        let sg = two_phase();
        let all: Vec<_> = sg.arc_ids().collect();
        assert_eq!(sg.display_path(&all), "x+ -1-> x- -2*-> x+");
    }
}
