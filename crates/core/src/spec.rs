//! A plain-data mirror of [`SignalGraph`] for interchange and (with the
//! `serde` feature) serialization.
//!
//! [`SignalGraphSpec`] is the unvalidated, order-preserving description of
//! a graph: event labels with kinds, arcs by event index. Converting a
//! spec back into a [`SignalGraph`] runs the full structural validation,
//! so deserialized data can never bypass the model's invariants.

use crate::event::EventKind;
use crate::graph::SignalGraph;
use crate::validate::ValidationError;

/// One event of a [`SignalGraphSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EventSpec {
    /// Display label (`"a+"`, `"req-"`, `"go"`).
    pub label: String,
    /// Repetitive / initial / finite.
    pub kind: EventKindSpec,
}

/// Serializable mirror of [`EventKind`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(rename_all = "snake_case"))]
pub enum EventKindSpec {
    /// Occurs infinitely often.
    Repetitive,
    /// Occurs once, uncaused, at time 0.
    Initial,
    /// Occurs once, caused by prefix events.
    Finite,
}

impl From<EventKind> for EventKindSpec {
    fn from(k: EventKind) -> Self {
        match k {
            EventKind::Repetitive => EventKindSpec::Repetitive,
            EventKind::Initial => EventKindSpec::Initial,
            EventKind::Finite => EventKindSpec::Finite,
        }
    }
}

impl From<EventKindSpec> for EventKind {
    fn from(k: EventKindSpec) -> Self {
        match k {
            EventKindSpec::Repetitive => EventKind::Repetitive,
            EventKindSpec::Initial => EventKind::Initial,
            EventKindSpec::Finite => EventKind::Finite,
        }
    }
}

/// One arc of a [`SignalGraphSpec`]; endpoints are indices into `events`.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ArcSpec {
    /// Index of the source event.
    pub src: u32,
    /// Index of the destination event.
    pub dst: u32,
    /// Delay label δ.
    pub delay: f64,
    /// Carries an initial token.
    pub marked: bool,
    /// Active once only.
    pub disengageable: bool,
}

/// The unvalidated plain-data form of a Signal Graph.
///
/// # Examples
///
/// ```
/// use tsg_core::spec::SignalGraphSpec;
/// use tsg_core::SignalGraph;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SignalGraph::builder();
/// let x = b.event("x+");
/// let y = b.event("x-");
/// b.arc(x, y, 1.0);
/// b.marked_arc(y, x, 2.0);
/// let sg = b.build()?;
///
/// let spec = SignalGraphSpec::from(&sg);
/// let back = spec.build()?;
/// assert_eq!(back.event_count(), sg.event_count());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SignalGraphSpec {
    /// Events in id order.
    pub events: Vec<EventSpec>,
    /// Arcs in id order.
    pub arcs: Vec<ArcSpec>,
}

impl SignalGraphSpec {
    /// Validates and builds the Signal Graph described by this spec.
    ///
    /// # Errors
    ///
    /// Returns the same [`ValidationError`]s as
    /// [`SignalGraphBuilder::build`](crate::builder::SignalGraphBuilder::build),
    /// plus [`ValidationError::DuplicateLabel`] for malformed indices
    /// mapped onto the nearest structural rule.
    pub fn build(&self) -> Result<SignalGraph, ValidationError> {
        let mut b = SignalGraph::builder();
        let mut ids = Vec::with_capacity(self.events.len());
        for e in &self.events {
            let label = e
                .label
                .parse()
                .unwrap_or_else(|_| crate::event::EventLabel::bare(e.label.clone()));
            ids.push(b.event_with(label, e.kind.into()));
        }
        for a in &self.arcs {
            let (Some(&s), Some(&d)) = (ids.get(a.src as usize), ids.get(a.dst as usize)) else {
                return Err(ValidationError::DuplicateLabel(format!(
                    "arc index {}->{} out of range",
                    a.src, a.dst
                )));
            };
            if a.marked {
                b.marked_arc(s, d, a.delay);
            } else if a.disengageable {
                b.disengageable_arc(s, d, a.delay);
            } else {
                b.arc(s, d, a.delay);
            }
        }
        b.build()
    }
}

impl From<&SignalGraph> for SignalGraphSpec {
    fn from(sg: &SignalGraph) -> Self {
        SignalGraphSpec {
            events: sg
                .events()
                .map(|e| EventSpec {
                    label: sg.label(e).to_string(),
                    kind: sg.kind(e).into(),
                })
                .collect(),
            arcs: sg
                .arc_ids()
                .map(|a| {
                    let arc = sg.arc(a);
                    ArcSpec {
                        src: arc.src().0,
                        dst: arc.dst().0,
                        delay: arc.delay().get(),
                        marked: arc.is_marked(),
                        disengageable: arc.is_disengageable(),
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure2() -> SignalGraph {
        let mut b = SignalGraph::builder();
        let e = b.initial_event("e-");
        let f = b.finite_event("f-");
        let ap = b.event("a+");
        let bp = b.event("b+");
        let cp = b.event("c+");
        let am = b.event("a-");
        let bm = b.event("b-");
        let cm = b.event("c-");
        b.arc(e, f, 3.0);
        b.disengageable_arc(e, ap, 2.0);
        b.disengageable_arc(f, bp, 1.0);
        b.arc(ap, cp, 3.0);
        b.arc(bp, cp, 2.0);
        b.arc(cp, am, 2.0);
        b.arc(cp, bm, 1.0);
        b.arc(am, cm, 3.0);
        b.arc(bm, cm, 2.0);
        b.marked_arc(cm, ap, 2.0);
        b.marked_arc(cm, bp, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let sg = figure2();
        let spec = SignalGraphSpec::from(&sg);
        let back = spec.build().unwrap();
        assert_eq!(back.event_count(), sg.event_count());
        assert_eq!(back.arc_count(), sg.arc_count());
        for (a, b) in sg.arc_ids().zip(back.arc_ids()) {
            assert_eq!(sg.arc(a), back.arc(b));
        }
        for (x, y) in sg.events().zip(back.events()) {
            assert_eq!(sg.label(x), back.label(y));
            assert_eq!(sg.kind(x), back.kind(y));
        }
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let spec = SignalGraphSpec {
            events: vec![EventSpec {
                label: "x+".into(),
                kind: EventKindSpec::Repetitive,
            }],
            arcs: vec![ArcSpec {
                src: 0,
                dst: 5, // out of range
                delay: 1.0,
                marked: false,
                disengageable: false,
            }],
        };
        assert!(spec.build().is_err());
    }

    #[test]
    fn token_free_spec_fails_validation() {
        let spec = SignalGraphSpec {
            events: vec![
                EventSpec {
                    label: "x+".into(),
                    kind: EventKindSpec::Repetitive,
                },
                EventSpec {
                    label: "x-".into(),
                    kind: EventKindSpec::Repetitive,
                },
            ],
            arcs: vec![
                ArcSpec {
                    src: 0,
                    dst: 1,
                    delay: 1.0,
                    marked: false,
                    disengageable: false,
                },
                ArcSpec {
                    src: 1,
                    dst: 0,
                    delay: 1.0,
                    marked: false,
                    disengageable: false,
                },
            ],
        };
        assert!(matches!(
            spec.build(),
            Err(ValidationError::TokenFreeCycle { .. })
        ));
    }
}
