//! Time quantities: validated arc delays and exact rationals.

use std::fmt;

/// A non-negative, finite arc delay (the `δ` labels of a Timed Signal Graph).
///
/// The paper defines delays over `[0, +∞)`; this newtype enforces that range
/// at construction so the analyses never have to re-validate.
///
/// # Examples
///
/// ```
/// use tsg_core::time::Delay;
///
/// let d = Delay::new(2.5)?;
/// assert_eq!(d.get(), 2.5);
/// assert!(Delay::new(-1.0).is_err());
/// assert!(Delay::new(f64::NAN).is_err());
/// # Ok::<(), tsg_core::time::InvalidDelay>(())
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct Delay(f64);

/// Error returned when constructing a [`Delay`] from a negative, infinite or
/// NaN value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InvalidDelay(pub f64);

impl fmt::Display for InvalidDelay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid delay {}: must be finite and >= 0", self.0)
    }
}

impl std::error::Error for InvalidDelay {}

impl Delay {
    /// The zero delay.
    pub const ZERO: Delay = Delay(0.0);

    /// Creates a delay, validating that `value` is finite and non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDelay`] for negative, infinite or NaN inputs.
    pub fn new(value: f64) -> Result<Self, InvalidDelay> {
        if value.is_finite() && value >= 0.0 {
            Ok(Delay(value))
        } else {
            Err(InvalidDelay(value))
        }
    }

    /// Returns the delay as an `f64`.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Returns `true` when the delay is an exact integer value.
    pub fn is_integral(self) -> bool {
        self.0.fract() == 0.0
    }
}

impl fmt::Display for Delay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl TryFrom<f64> for Delay {
    type Error = InvalidDelay;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Delay::new(value)
    }
}

impl From<Delay> for f64 {
    fn from(d: Delay) -> f64 {
        d.get()
    }
}

/// An exact rational number with `i64` numerator and denominator.
///
/// Cycle times of integral-delay graphs are rationals (e.g. the Muller ring
/// of Section VIII.D has τ = 20/3); [`Ratio`] lets tests and reports state
/// them exactly.
///
/// The representation is always reduced, with a strictly positive
/// denominator.
///
/// # Examples
///
/// ```
/// use tsg_core::time::Ratio;
///
/// let r = Ratio::new(20, 3);
/// assert_eq!(r.to_string(), "20/3");
/// assert_eq!(Ratio::new(10, 5), Ratio::new(2, 1));
/// assert!(Ratio::new(20, 3) > Ratio::new(13, 2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Ratio {
    numer: i64,
    denom: i64,
}

impl Ratio {
    /// Creates the reduced rational `numer / denom`.
    ///
    /// # Panics
    ///
    /// Panics if `denom == 0`.
    pub fn new(numer: i64, denom: i64) -> Self {
        assert!(denom != 0, "denominator must be non-zero");
        let g = gcd(numer.unsigned_abs(), denom.unsigned_abs()) as i64;
        let sign = if denom < 0 { -1 } else { 1 };
        Ratio {
            numer: sign * numer / g,
            denom: sign * denom / g,
        }
    }

    /// The reduced numerator.
    pub fn numer(self) -> i64 {
        self.numer
    }

    /// The reduced (positive) denominator.
    pub fn denom(self) -> i64 {
        self.denom
    }

    /// Converts to `f64`.
    pub fn as_f64(self) -> f64 {
        self.numer as f64 / self.denom as f64
    }

    /// Returns the integer value when the ratio is integral.
    pub fn as_integer(self) -> Option<i64> {
        (self.denom == 1).then_some(self.numer)
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Denominators are positive, so cross-multiplication preserves order.
        let lhs = self.numer as i128 * other.denom as i128;
        let rhs = other.numer as i128 * self.denom as i128;
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.denom == 1 {
            write!(f, "{}", self.numer)
        } else {
            write!(f, "{}/{}", self.numer, self.denom)
        }
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_validation() {
        assert!(Delay::new(0.0).is_ok());
        assert!(Delay::new(3.5).is_ok());
        assert_eq!(Delay::new(-0.1), Err(InvalidDelay(-0.1)));
        assert!(Delay::new(f64::INFINITY).is_err());
        assert!(Delay::new(f64::NAN).is_err());
    }

    #[test]
    fn delay_display_and_conversion() {
        let d = Delay::new(2.0).unwrap();
        assert_eq!(d.to_string(), "2");
        assert_eq!(f64::from(d), 2.0);
        assert!(d.is_integral());
        assert!(!Delay::new(2.5).unwrap().is_integral());
        assert_eq!(Delay::try_from(1.0).unwrap().get(), 1.0);
    }

    #[test]
    fn ratio_reduces() {
        assert_eq!(Ratio::new(20, 3).to_string(), "20/3");
        assert_eq!(Ratio::new(10, 2), Ratio::new(5, 1));
        assert_eq!(Ratio::new(5, 1).as_integer(), Some(5));
        assert_eq!(Ratio::new(20, 3).as_integer(), None);
    }

    #[test]
    fn ratio_negative_denominator_normalizes() {
        assert_eq!(Ratio::new(1, -2), Ratio::new(-1, 2));
        assert!(Ratio::new(1, -2).denom() > 0);
    }

    #[test]
    fn ratio_ordering_is_exact() {
        assert!(Ratio::new(20, 3) > Ratio::new(13, 2)); // 6.67 > 6.5
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert_eq!(
            Ratio::new(2, 4).cmp(&Ratio::new(1, 2)),
            std::cmp::Ordering::Equal
        );
    }

    #[test]
    fn ratio_zero() {
        assert_eq!(Ratio::new(0, 5), Ratio::new(0, 1));
        assert_eq!(Ratio::new(0, 5).as_f64(), 0.0);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn ratio_zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }
}
