//! Finite unfolding of a Signal Graph (Section III.B).
//!
//! The unfolding is an acyclic occurrence graph whose nodes are
//! *instantiations* `e_i` of the events of the Signal Graph. Period 0
//! contains the prefix events and the first instantiation of every
//! repetitive event; period `i > 0` contains the `i`-th instantiations of
//! the repetitive events. Arcs follow the marking structure:
//!
//! * a plain arc `u → v` yields `u_i → v_i` in every period,
//! * a marked arc `u →• v` crosses the period border: `u_{i} → v_{i+1}`,
//! * a disengageable arc `u ⇥ v` yields the single arc `u_0 → v_0`,
//! * prefix arcs appear once, in period 0.
//!
//! Precedence (`⇒`) and concurrency (`‖`) between instantiations are
//! reachability questions on this DAG (Section III.A).

use std::collections::HashMap;
use std::fmt;

use tsg_graph::{reach, DiGraph, NodeId};

use crate::arc::ArcId;
use crate::event::{EventId, Polarity};
use crate::graph::SignalGraph;

/// Identifier of an instantiation inside an [`Unfolding`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InstId(pub u32);

impl InstId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An instantiation `e_i`: the `index`-th occurrence of `event`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Instance {
    /// The Signal Graph event being instantiated.
    pub event: EventId,
    /// The occurrence index `i` (0-based).
    pub index: u32,
}

/// A finite unfolding covering a fixed number of periods.
///
/// # Examples
///
/// ```
/// use tsg_core::SignalGraph;
/// use tsg_core::unfold::Unfolding;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SignalGraph::builder();
/// let xp = b.event("x+");
/// let xm = b.event("x-");
/// b.arc(xp, xm, 1.0);
/// b.marked_arc(xm, xp, 1.0);
/// let sg = b.build()?;
///
/// let u = Unfolding::build(&sg, 3);
/// let xp0 = u.instance(xp, 0).unwrap();
/// let xm2 = u.instance(xm, 2).unwrap();
/// assert!(u.precedes(xp0, xm2));
/// assert!(!u.concurrent(xp0, xm2));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Unfolding {
    instances: Vec<Instance>,
    graph: DiGraph,
    origin_arc: Vec<ArcId>,
    lookup: HashMap<(EventId, u32), InstId>,
    periods: u32,
}

impl Unfolding {
    /// Builds the unfolding of `sg` over `periods` periods (`periods >= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `periods == 0`.
    pub fn build(sg: &SignalGraph, periods: u32) -> Self {
        assert!(periods >= 1, "unfolding needs at least one period");
        let mut instances = Vec::new();
        let mut lookup = HashMap::new();
        let mut graph = DiGraph::new();
        let mut origin_arc = Vec::new();

        let add = |event: EventId,
                   index: u32,
                   instances: &mut Vec<Instance>,
                   lookup: &mut HashMap<(EventId, u32), InstId>,
                   graph: &mut DiGraph| {
            let id = InstId(instances.len() as u32);
            instances.push(Instance { event, index });
            lookup.insert((event, index), id);
            graph.add_node();
            id
        };

        for e in sg.prefix_events() {
            add(e, 0, &mut instances, &mut lookup, &mut graph);
        }
        for p in 0..periods {
            for e in sg.repetitive_events() {
                add(e, p, &mut instances, &mut lookup, &mut graph);
            }
        }

        for a in sg.arc_ids() {
            let arc = sg.arc(a);
            let (u, v) = (arc.src(), arc.dst());
            if arc.is_disengageable() || (!sg.is_repetitive(u) && !sg.is_repetitive(v)) {
                // one arc, in period 0
                let s = lookup[&(u, 0)];
                let d = lookup[&(v, 0)];
                graph.add_edge(NodeId(s.0), NodeId(d.0));
                origin_arc.push(a);
            } else if arc.is_marked() {
                for p in 0..periods.saturating_sub(1) {
                    let s = lookup[&(u, p)];
                    let d = lookup[&(v, p + 1)];
                    graph.add_edge(NodeId(s.0), NodeId(d.0));
                    origin_arc.push(a);
                }
            } else {
                for p in 0..periods {
                    let s = lookup[&(u, p)];
                    let d = lookup[&(v, p)];
                    graph.add_edge(NodeId(s.0), NodeId(d.0));
                    origin_arc.push(a);
                }
            }
        }

        Unfolding {
            instances,
            graph,
            origin_arc,
            lookup,
            periods,
        }
    }

    /// Number of periods this unfolding covers.
    pub fn periods(&self) -> u32 {
        self.periods
    }

    /// Number of instantiations.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// The instantiation `e_i`, if present in this unfolding.
    pub fn instance(&self, event: EventId, index: u32) -> Option<InstId> {
        self.lookup.get(&(event, index)).copied()
    }

    /// The event/index pair of an instantiation.
    pub fn info(&self, id: InstId) -> Instance {
        self.instances[id.index()]
    }

    /// The Signal Graph arc an unfolding edge was instantiated from.
    pub fn edge_origin(&self, edge: usize) -> ArcId {
        self.origin_arc[edge]
    }

    /// The underlying DAG (node `i` = instantiation `i`).
    pub fn digraph(&self) -> &DiGraph {
        &self.graph
    }

    /// Precedence `a ⇒ b`: `a` occurs before `b` in every feasible
    /// sequence containing `b`. Reflexive (`a ⇒ a`) per path reachability.
    pub fn precedes(&self, a: InstId, b: InstId) -> bool {
        reach::descendants(&self.graph, NodeId(a.0))[b.index()]
    }

    /// Concurrency `a ‖ b`: neither precedes the other, and the
    /// instantiations are distinct.
    pub fn concurrent(&self, a: InstId, b: InstId) -> bool {
        a != b && !self.precedes(a, b) && !self.precedes(b, a)
    }

    /// Iterator over all instantiation ids.
    pub fn instance_ids(&self) -> impl ExactSizeIterator<Item = InstId> + '_ {
        (0..self.instances.len() as u32).map(InstId)
    }

    /// Renders an instantiation as `a+_3`.
    pub fn display(&self, sg: &SignalGraph, id: InstId) -> String {
        let inst = self.info(id);
        format!("{}_{}", sg.label(inst.event), inst.index)
    }

    /// Renders the unfolding in Graphviz DOT syntax, grouping each period
    /// into a cluster (the layout of the paper's Figure 2b).
    pub fn to_dot(&self, sg: &SignalGraph, name: &str) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph {name} {{");
        let _ = writeln!(s, "  rankdir=TB;");
        for p in 0..self.periods {
            let _ = writeln!(s, "  subgraph cluster_p{p} {{");
            let _ = writeln!(s, "    label=\"period {p}\";");
            for id in self.instance_ids() {
                if self.info(id).index == p {
                    let _ = writeln!(s, "    \"{}\";", self.display(sg, id));
                }
            }
            let _ = writeln!(s, "  }}");
        }
        for e in self.graph.edge_ids() {
            let (u, v) = self.graph.endpoints(e);
            let arc = sg.arc(self.origin_arc[e.index()]);
            let _ = writeln!(
                s,
                "  \"{}\" -> \"{}\" [label=\"{}\"];",
                self.display(sg, InstId(u.0)),
                self.display(sg, InstId(v.0)),
                arc.delay()
            );
        }
        s.push_str("}\n");
        s
    }
}

/// A violation of the signal-level implementability conditions of Section
/// VIII.A: switch-over correctness (rises and falls of a signal must
/// alternate) or auto-concurrency (no two concurrent transitions of the
/// same signal).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SignalConsistencyError {
    /// A rise and a fall of the same signal are concurrent.
    AutoConcurrency {
        /// The signal whose transitions are concurrent.
        signal: String,
    },
    /// Rises and falls of the signal do not alternate in the unfolding.
    SwitchOverViolation {
        /// The offending signal.
        signal: String,
    },
}

impl fmt::Display for SignalConsistencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalConsistencyError::AutoConcurrency { signal } => {
                write!(f, "concurrent transitions of signal {signal:?}")
            }
            SignalConsistencyError::SwitchOverViolation { signal } => {
                write!(f, "transitions of signal {signal:?} do not alternate")
            }
        }
    }
}

impl std::error::Error for SignalConsistencyError {}

/// Checks switch-over correctness and absence of auto-concurrency for every
/// signal that has exactly one rise and one fall event (the common case for
/// circuit-derived graphs; signals with multiple events per transition are
/// skipped, as the paper treats those as independently named events).
///
/// # Errors
///
/// Returns the first [`SignalConsistencyError`] found.
pub fn check_signal_consistency(sg: &SignalGraph) -> Result<(), SignalConsistencyError> {
    let unfolding = Unfolding::build(sg, 2);
    let mut by_signal: HashMap<&str, (Vec<EventId>, Vec<EventId>)> = HashMap::new();
    for e in sg.events() {
        let label = sg.label(e);
        match label.polarity() {
            Some(Polarity::Rise) => by_signal.entry(label.signal()).or_default().0.push(e),
            Some(Polarity::Fall) => by_signal.entry(label.signal()).or_default().1.push(e),
            None => {}
        }
    }
    for (signal, (rises, falls)) in by_signal {
        if rises.len() != 1 || falls.len() != 1 {
            continue;
        }
        if !sg.is_repetitive(rises[0]) || !sg.is_repetitive(falls[0]) {
            continue;
        }
        let r0 = unfolding.instance(rises[0], 0).expect("period 0 exists");
        let f0 = unfolding.instance(falls[0], 0).expect("period 0 exists");
        let r1 = unfolding.instance(rises[0], 1).expect("period 1 exists");
        let f1 = unfolding.instance(falls[0], 1).expect("period 1 exists");
        if unfolding.concurrent(r0, f0) {
            return Err(SignalConsistencyError::AutoConcurrency {
                signal: signal.to_owned(),
            });
        }
        // Alternation: whichever of r0/f0 comes first, the other must fit
        // between it and its next instantiation.
        let ok = if unfolding.precedes(r0, f0) {
            unfolding.precedes(f0, r1)
        } else {
            unfolding.precedes(r0, f1)
        };
        if !ok {
            return Err(SignalConsistencyError::SwitchOverViolation {
                signal: signal.to_owned(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignalGraph;

    fn figure2() -> SignalGraph {
        let mut b = SignalGraph::builder();
        let e = b.initial_event("e-");
        let f = b.finite_event("f-");
        let ap = b.event("a+");
        let bp = b.event("b+");
        let cp = b.event("c+");
        let am = b.event("a-");
        let bm = b.event("b-");
        let cm = b.event("c-");
        b.arc(e, f, 3.0);
        b.disengageable_arc(e, ap, 2.0);
        b.disengageable_arc(f, bp, 1.0);
        b.arc(ap, cp, 3.0);
        b.arc(bp, cp, 2.0);
        b.arc(cp, am, 2.0);
        b.arc(cp, bm, 1.0);
        b.arc(am, cm, 3.0);
        b.arc(bm, cm, 2.0);
        b.marked_arc(cm, ap, 2.0);
        b.marked_arc(cm, bp, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn instance_counts() {
        let sg = figure2();
        let u = Unfolding::build(&sg, 2);
        // 2 prefix + 6 repetitive * 2 periods
        assert_eq!(u.instance_count(), 14);
        assert_eq!(u.periods(), 2);
    }

    #[test]
    fn period_structure_of_marked_arcs() {
        let sg = figure2();
        let u = Unfolding::build(&sg, 2);
        let cm = sg.event_by_label("c-").unwrap();
        let ap = sg.event_by_label("a+").unwrap();
        let cm0 = u.instance(cm, 0).unwrap();
        let ap0 = u.instance(ap, 0).unwrap();
        let ap1 = u.instance(ap, 1).unwrap();
        assert!(u.precedes(cm0, ap1));
        assert!(!u.precedes(cm0, ap0));
    }

    #[test]
    fn example4_reachability_sets() {
        // Example 4: events not preceded by b+_0 are {f-_0, e-_0, a+_0}.
        let sg = figure2();
        let u = Unfolding::build(&sg, 2);
        let bp0 = u.instance(sg.event_by_label("b+").unwrap(), 0).unwrap();
        let unreached: Vec<String> = u
            .instance_ids()
            .filter(|&i| i != bp0 && !u.precedes(bp0, i))
            .map(|i| u.display(&sg, i))
            .collect();
        assert_eq!(unreached, vec!["e-_0", "f-_0", "a+_0"]);
    }

    #[test]
    fn concurrency_of_parallel_branches() {
        let sg = figure2();
        let u = Unfolding::build(&sg, 2);
        let ap0 = u.instance(sg.event_by_label("a+").unwrap(), 0).unwrap();
        let bp0 = u.instance(sg.event_by_label("b+").unwrap(), 0).unwrap();
        assert!(u.concurrent(ap0, bp0));
        assert!(!u.concurrent(ap0, ap0));
    }

    #[test]
    fn precedence_is_reflexively_true_on_paths() {
        let sg = figure2();
        let u = Unfolding::build(&sg, 3);
        let e0 = u.instance(sg.event_by_label("e-").unwrap(), 0).unwrap();
        let cp2 = u.instance(sg.event_by_label("c+").unwrap(), 2).unwrap();
        assert!(u.precedes(e0, cp2));
        assert!(!u.precedes(cp2, e0));
    }

    #[test]
    fn unfolding_is_acyclic() {
        let sg = figure2();
        let u = Unfolding::build(&sg, 4);
        assert!(tsg_graph::topo::topological_order(u.digraph()).is_ok());
    }

    #[test]
    fn signal_consistency_of_figure2() {
        let sg = figure2();
        assert_eq!(check_signal_consistency(&sg), Ok(()));
    }

    #[test]
    fn auto_concurrency_detected() {
        // x+ and x- on two independent branches of a fork: concurrent.
        let mut b = SignalGraph::builder();
        let xp = b.event("x+");
        let xm = b.event("x-");
        let y = b.event("y");
        b.arc(y, xp, 1.0);
        b.arc(y, xm, 1.0);
        b.marked_arc(xp, y, 1.0);
        b.marked_arc(xm, y, 1.0);
        let sg = b.build().unwrap();
        assert!(matches!(
            check_signal_consistency(&sg),
            Err(SignalConsistencyError::AutoConcurrency { .. })
        ));
    }

    #[test]
    fn display_formats_instance() {
        let sg = figure2();
        let u = Unfolding::build(&sg, 2);
        let cp1 = u.instance(sg.event_by_label("c+").unwrap(), 1).unwrap();
        assert_eq!(u.display(&sg, cp1), "c+_1");
    }

    #[test]
    fn unfolding_dot_export() {
        let sg = figure2();
        let u = Unfolding::build(&sg, 2);
        let dot = u.to_dot(&sg, "fig2b");
        assert!(dot.starts_with("digraph fig2b"));
        assert!(dot.contains("cluster_p0"));
        assert!(dot.contains("cluster_p1"));
        assert!(dot.contains("\"c-_0\" -> \"a+_1\""));
        assert_eq!(dot.matches(" -> ").count(), u.digraph().edge_count());
    }
}
