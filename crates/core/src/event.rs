//! Events of a Signal Graph: identifiers, labels and kinds.

use std::fmt;
use std::str::FromStr;

/// Identifier of an event within a [`SignalGraph`](crate::SignalGraph).
///
/// Ids are dense indices assigned in insertion order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(pub u32);

impl EventId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ev{}", self.0)
    }
}

/// Direction of a signal transition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Polarity {
    /// Up-going transition (`a+`, drawn `a↑` in the paper).
    Rise,
    /// Down-going transition (`a-`, drawn `a↓` in the paper).
    Fall,
}

impl Polarity {
    /// The opposite polarity.
    pub fn opposite(self) -> Polarity {
        match self {
            Polarity::Rise => Polarity::Fall,
            Polarity::Fall => Polarity::Rise,
        }
    }

    /// The signal value *after* a transition of this polarity.
    pub fn level_after(self) -> bool {
        matches!(self, Polarity::Rise)
    }
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Polarity::Rise => f.write_str("+"),
            Polarity::Fall => f.write_str("-"),
        }
    }
}

/// How an event participates in the execution (Section III.A of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum EventKind {
    /// Occurs infinitely often; belongs to the cyclic part (`A_r`).
    #[default]
    Repetitive,
    /// Occurs exactly once, at time 0, with no causes (the set `I`).
    Initial,
    /// Occurs exactly once, caused by other prefix events (e.g. `f-` in
    /// Figure 1; in `A \ (A_r ∪ I)`).
    Finite,
}

impl EventKind {
    /// `true` for [`EventKind::Initial`] and [`EventKind::Finite`] — the
    /// non-repetitive "prefix" of the behaviour.
    pub fn is_prefix(self) -> bool {
        !matches!(self, EventKind::Repetitive)
    }
}

/// Human-readable label of an event: a signal name plus an optional
/// transition polarity.
///
/// Labels follow the `.g`/STG convention: `a+` (rise), `a-` (fall), or a
/// bare name `req` for events without signal-level semantics. Multiple
/// events of the same signal transition ("multiple events" in Section
/// VIII.A) are distinguished by the signal name itself, e.g. `a1+`, `a2+`.
///
/// # Examples
///
/// ```
/// use tsg_core::event::{EventLabel, Polarity};
///
/// let l: EventLabel = "req+".parse()?;
/// assert_eq!(l.signal(), "req");
/// assert_eq!(l.polarity(), Some(Polarity::Rise));
/// assert_eq!(l.to_string(), "req+");
/// # Ok::<(), tsg_core::event::ParseLabelError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct EventLabel {
    signal: String,
    polarity: Option<Polarity>,
}

impl EventLabel {
    /// Creates a label for a transition of `signal` with the given polarity.
    pub fn transition(signal: impl Into<String>, polarity: Polarity) -> Self {
        EventLabel {
            signal: signal.into(),
            polarity: Some(polarity),
        }
    }

    /// Creates a label with no polarity (a bare event name).
    pub fn bare(signal: impl Into<String>) -> Self {
        EventLabel {
            signal: signal.into(),
            polarity: None,
        }
    }

    /// The signal name.
    pub fn signal(&self) -> &str {
        &self.signal
    }

    /// The transition polarity, when the label is a signal transition.
    pub fn polarity(&self) -> Option<Polarity> {
        self.polarity
    }
}

impl fmt::Display for EventLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.polarity {
            Some(p) => write!(f, "{}{}", self.signal, p),
            None => f.write_str(&self.signal),
        }
    }
}

/// Error returned when parsing an [`EventLabel`] from an empty or malformed
/// string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseLabelError(pub String);

impl fmt::Display for ParseLabelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid event label {:?}", self.0)
    }
}

impl std::error::Error for ParseLabelError {}

impl FromStr for EventLabel {
    type Err = ParseLabelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseLabelError(s.to_owned()));
        }
        let (name, pol) = match s.as_bytes()[s.len() - 1] {
            b'+' => (&s[..s.len() - 1], Some(Polarity::Rise)),
            b'-' => (&s[..s.len() - 1], Some(Polarity::Fall)),
            _ => (s, None),
        };
        if name.is_empty() || name.contains(|c: char| c.is_whitespace()) {
            return Err(ParseLabelError(s.to_owned()));
        }
        Ok(EventLabel {
            signal: name.to_owned(),
            polarity: pol,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarity_roundtrip() {
        assert_eq!(Polarity::Rise.opposite(), Polarity::Fall);
        assert_eq!(Polarity::Fall.opposite(), Polarity::Rise);
        assert!(Polarity::Rise.level_after());
        assert!(!Polarity::Fall.level_after());
    }

    #[test]
    fn label_parsing() {
        let l: EventLabel = "a+".parse().unwrap();
        assert_eq!(l, EventLabel::transition("a", Polarity::Rise));
        let l: EventLabel = "ack-".parse().unwrap();
        assert_eq!(l, EventLabel::transition("ack", Polarity::Fall));
        let l: EventLabel = "go".parse().unwrap();
        assert_eq!(l, EventLabel::bare("go"));
    }

    #[test]
    fn label_parse_errors() {
        assert!("".parse::<EventLabel>().is_err());
        assert!("+".parse::<EventLabel>().is_err());
        assert!("a b+".parse::<EventLabel>().is_err());
    }

    #[test]
    fn label_display_roundtrip() {
        for s in ["a+", "a-", "go", "x13+"] {
            let l: EventLabel = s.parse().unwrap();
            assert_eq!(l.to_string(), s);
        }
    }

    #[test]
    fn kind_prefix_predicate() {
        assert!(!EventKind::Repetitive.is_prefix());
        assert!(EventKind::Initial.is_prefix());
        assert!(EventKind::Finite.is_prefix());
        assert_eq!(EventKind::default(), EventKind::Repetitive);
    }
}
