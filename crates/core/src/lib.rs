//! # tsg-core — Timed Signal Graphs and the DAC'94 cycle-time algorithm
//!
//! This crate implements the model and the primary contribution of
//! Nielsen & Kishinevsky, *"Performance Analysis Based on Timing
//! Simulation"*, DAC 1994:
//!
//! * the **Signal Graph** model (Section III): events, arcs with initial
//!   marking and disengageability, delays — see [`SignalGraph`];
//! * the **token game** execution semantics — see [`marking`];
//! * the **unfolding** into an acyclic occurrence net with periods,
//!   precedence (`⇒`) and concurrency (`‖`) relations — see [`unfold`];
//! * **timing simulation** `t(·)` and **event-initiated timing simulation**
//!   `t_g(·)` (Section IV) — see [`analysis::sim`] and
//!   [`analysis::initiated`];
//! * the **O(b²m) cycle-time algorithm** with critical-cycle backtracking
//!   (Sections VI–VII) — see [`analysis::CycleTimeAnalysis`];
//! * border/cut sets (Section VI.A) — see [`analysis::border`];
//! * ASCII timing diagrams (Figure 1c/1d) — see [`analysis::diagram`];
//! * Graphviz export — see [`dot`].
//!
//! # Example
//!
//! Compute the cycle time of a two-stage self-timed loop:
//!
//! ```
//! use tsg_core::SignalGraph;
//! use tsg_core::analysis::CycleTimeAnalysis;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = SignalGraph::builder();
//! let rp = b.event("r+");
//! let rm = b.event("r-");
//! b.arc(rp, rm, 3.0);
//! b.marked_arc(rm, rp, 2.0);
//! let sg = b.build()?;
//!
//! let analysis = CycleTimeAnalysis::run(&sg)?;
//! assert_eq!(analysis.cycle_time().as_f64(), 5.0);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod arc;
pub mod builder;
pub mod dot;
pub mod event;
pub mod graph;
pub mod marking;
pub mod spec;
pub mod time;
pub mod unfold;
pub mod validate;

pub use arc::{Arc, ArcId};
pub use builder::SignalGraphBuilder;
pub use event::{EventId, EventKind, EventLabel, Polarity};
pub use graph::{SignalGraph, TimedSignalGraph};
pub use time::{Delay, Ratio};
pub use validate::ValidationError;
