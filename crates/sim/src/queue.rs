//! The monotone pending-event queue at the heart of every simulator.
//!
//! Two invariants are enforced at *enqueue* time so they can never
//! surface as mysterious mis-ordering at pop time:
//!
//! 1. **Totally ordered times** — scheduled times must be finite; NaN is
//!    rejected (a NaN comparison under raw `f64` ordering silently
//!    corrupts a priority queue).
//! 2. **Monotonicity** — an event may not be scheduled before the
//!    current simulation time (the time of the last popped event). This
//!    is exactly the "no negative delays" rule: causes precede effects.
//!
//! Ties are broken by an enqueue sequence number, making pop order fully
//! deterministic across runs, platforms and thread counts.
//!
//! The queue's *storage* is a swappable [`QueueBackend`]: the default
//! [`BinaryHeapQueue`](crate::BinaryHeapQueue) or the bounded-delay-tuned
//! [`CalendarQueue`](crate::CalendarQueue) — both pop bit-identical
//! streams, so a simulator's backend is a performance choice, not a
//! semantic one. `benches/kernel.rs` measures them head-to-head.

use std::fmt;
use std::marker::PhantomData;

use crate::backend::{BinaryHeapQueue, QueueBackend};

/// A scheduled event popped from an [`EventQueue`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event<T> {
    /// Simulation time of the event.
    pub time: f64,
    /// Enqueue sequence number (the deterministic tie-breaker).
    pub seq: u64,
    /// Caller-defined payload.
    pub payload: T,
}

/// Why [`EventQueue::try_schedule`] refused an event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScheduleError {
    /// The time was NaN or infinite.
    NonFiniteTime {
        /// The offending time.
        time: f64,
    },
    /// The time lies before the current simulation time — a negative
    /// effective delay.
    TimeRegression {
        /// The offending time.
        time: f64,
        /// The queue's current time.
        now: f64,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NonFiniteTime { time } => {
                write!(f, "cannot schedule event at non-finite time {time}")
            }
            ScheduleError::TimeRegression { time, now } => {
                write!(
                    f,
                    "cannot schedule event at {time} before current time {now}"
                )
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A deterministic min-priority queue of timed events.
///
/// Generic over its storage [`QueueBackend`] `B`; the default is the
/// binary heap, so `EventQueue<T>` behaves exactly as it always has.
///
/// # Examples
///
/// ```
/// use tsg_sim::{EventQueue, ScheduleError};
///
/// let mut q = EventQueue::new();
/// q.schedule(1.5, 'x');
/// assert!(matches!(
///     q.try_schedule(f64::NAN, 'n'),
///     Err(ScheduleError::NonFiniteTime { .. })
/// ));
/// let ev = q.pop().unwrap();
/// assert_eq!((ev.time, ev.payload), (1.5, 'x'));
/// // Popping advanced the clock: the past is closed.
/// assert!(q.try_schedule(1.0, 'y').is_err());
/// ```
///
/// Running on the calendar backend instead:
///
/// ```
/// use tsg_sim::{CalendarQueue, EventQueue};
///
/// let mut q = EventQueue::with_backend(CalendarQueue::with_delay_bound(4.0));
/// q.schedule(2.0, "b");
/// q.schedule(1.0, "a");
/// assert_eq!(q.pop().unwrap().payload, "a");
/// ```
#[derive(Clone, Debug)]
pub struct EventQueue<T, B = BinaryHeapQueue<T>> {
    backend: B,
    seq: u64,
    now: f64,
    _payload: PhantomData<fn(T) -> T>,
}

impl<T, B: QueueBackend<T> + Default> Default for EventQueue<T, B> {
    fn default() -> Self {
        Self::with_backend(B::default())
    }
}

impl<T> EventQueue<T> {
    /// An empty binary-heap queue at time `0.0`.
    pub fn new() -> Self {
        Self::with_backend(BinaryHeapQueue::new())
    }

    /// An empty binary-heap queue with room for `capacity` pending
    /// events — sized once, a restartable simulator never regrows it.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_backend(BinaryHeapQueue::with_capacity(capacity))
    }
}

impl<T, B: QueueBackend<T>> EventQueue<T, B> {
    /// An empty queue at time `0.0` over the given storage backend.
    pub fn with_backend(backend: B) -> Self {
        EventQueue {
            backend,
            seq: 0,
            now: 0.0,
            _payload: PhantomData,
        }
    }

    /// The current simulation time: the time of the last popped event
    /// (`0.0` before the first pop).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.backend.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.backend.is_empty()
    }

    /// The backend's label (`"binary_heap"`, `"calendar"`).
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// The storage backend, for introspection (kind, capacity) by
    /// simulators that keep warm queues across runs.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Schedules `payload` at absolute `time`.
    ///
    /// # Errors
    ///
    /// Rejects NaN/infinite times and times before [`EventQueue::now`]
    /// (equivalently: negative delays).
    pub fn try_schedule(&mut self, time: f64, payload: T) -> Result<(), ScheduleError> {
        if !time.is_finite() {
            return Err(ScheduleError::NonFiniteTime { time });
        }
        if time < self.now {
            return Err(ScheduleError::TimeRegression {
                time,
                now: self.now,
            });
        }
        self.seq += 1;
        self.backend.push(time, self.seq, payload);
        Ok(())
    }

    /// Schedules `payload` at absolute `time`.
    ///
    /// # Panics
    ///
    /// Panics on NaN/infinite times or times before [`EventQueue::now`] —
    /// see [`EventQueue::try_schedule`] for the fallible variant.
    pub fn schedule(&mut self, time: f64, payload: T) {
        if let Err(e) = self.try_schedule(time, payload) {
            panic!("EventQueue::schedule: {e}");
        }
    }

    /// Schedules `payload` after a non-negative `delay` from the current
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is NaN or negative.
    pub fn schedule_after(&mut self, delay: f64, payload: T) {
        assert!(
            delay >= 0.0,
            "EventQueue::schedule_after: delay must be non-negative and not NaN, got {delay}"
        );
        self.schedule(self.now + delay, payload);
    }

    /// Pops the earliest pending event and advances the clock to it.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let event = self.backend.pop_min()?;
        self.now = event.time;
        Some(event)
    }

    /// The time of the earliest pending event without popping it.
    pub fn peek_time(&self) -> Option<f64> {
        self.backend.peek_time()
    }

    /// Drops all pending events and resets the clock to `0.0`, keeping
    /// the backend's allocations — restarting a simulator over the same
    /// queue costs no reallocation.
    pub fn clear(&mut self) {
        self.backend.clear();
        self.seq = 0;
        self.now = 0.0;
    }

    /// Pre-allocates room for `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.backend.reserve(additional);
    }

    /// Pending events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.backend.capacity()
    }
}

/// A point-in-time snapshot of an [`EventQueue`]: its clock, sequence
/// counter and pending entries.
///
/// A checkpoint is *storage-independent* — it carries no backend type —
/// so a snapshot taken from a binary-heap queue restores into a
/// calendar queue (or vice versa) and the two pop bit-identical streams
/// from that point on. Entries are held in push order (ascending `seq`),
/// so a restore replays the original enqueue schedule exactly.
#[derive(Clone, Debug)]
pub struct QueueCheckpoint<T> {
    now: f64,
    seq: u64,
    /// Pending entries, ascending by `seq` (push order).
    entries: Vec<Event<T>>,
}

impl<T> QueueCheckpoint<T> {
    /// The simulation time at which the checkpoint was taken.
    pub fn time(&self) -> f64 {
        self.now
    }

    /// Number of pending events captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the checkpoint captured no pending events.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The captured entries, ascending by enqueue sequence number.
    pub fn entries(&self) -> &[Event<T>] {
        &self.entries
    }
}

impl<T: Clone, B: QueueBackend<T>> EventQueue<T, B> {
    /// Snapshots the queue — clock, sequence counter, pending set — into
    /// a backend-independent [`QueueCheckpoint`].
    pub fn checkpoint(&self) -> QueueCheckpoint<T> {
        let mut entries = Vec::with_capacity(self.len());
        self.backend.visit_entries(&mut |time, seq, payload| {
            entries.push(Event {
                time,
                seq,
                payload: payload.clone(),
            });
        });
        // Canonical push order: backends surrender entries unordered.
        entries.sort_by_key(|e| e.seq);
        QueueCheckpoint {
            now: self.now,
            seq: self.seq,
            entries,
        }
    }

    /// Restores the queue to the checkpointed state, keeping the
    /// backend's allocations. The pop stream after a restore is
    /// bit-identical to the stream the checkpointed queue would have
    /// produced — whatever backend either queue runs on.
    pub fn restore(&mut self, cp: &QueueCheckpoint<T>) {
        self.backend.clear();
        for e in &cp.entries {
            self.backend.push(e.time, e.seq, e.payload.clone());
        }
        self.seq = cp.seq;
        self.now = cp.now;
    }

    /// Replay-from-time restore: rewinds (or fast-forwards) the clock to
    /// `from` and re-enqueues only the checkpointed events scheduled at
    /// or after `from` — events in the dropped region are the caller's
    /// to re-schedule (a dirty-region restart re-injects its own).
    ///
    /// # Panics
    ///
    /// Panics if `from` is NaN or infinite.
    pub fn restore_from(&mut self, cp: &QueueCheckpoint<T>, from: f64) {
        assert!(
            from.is_finite(),
            "EventQueue::restore_from: time must be finite, got {from}"
        );
        self.backend.clear();
        for e in cp.entries.iter().filter(|e| e.time >= from) {
            self.backend.push(e.time, e.seq, e.payload.clone());
        }
        self.seq = cp.seq;
        self.now = from;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::CalendarQueue;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 3);
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn ties_break_by_sequence() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_nan_and_infinite() {
        let mut q = EventQueue::new();
        assert!(matches!(
            q.try_schedule(f64::NAN, ()),
            Err(ScheduleError::NonFiniteTime { .. })
        ));
        assert!(matches!(
            q.try_schedule(f64::INFINITY, ()),
            Err(ScheduleError::NonFiniteTime { .. })
        ));
        assert!(q.is_empty());
    }

    #[test]
    fn rejects_time_regression() {
        let mut q = EventQueue::new();
        q.schedule(2.0, ());
        q.pop();
        assert_eq!(q.now(), 2.0);
        assert_eq!(
            q.try_schedule(1.0, ()),
            Err(ScheduleError::TimeRegression {
                time: 1.0,
                now: 2.0
            })
        );
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn schedule_panics_on_nan() {
        EventQueue::new().schedule(f64::NAN, ());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn schedule_after_panics_on_negative_delay() {
        EventQueue::new().schedule_after(-1.0, ());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn schedule_after_panics_on_nan_delay() {
        EventQueue::new().schedule_after(f64::NAN, ());
    }

    #[test]
    fn schedule_after_accumulates_from_now() {
        let mut q = EventQueue::new();
        q.schedule_after(1.5, 'a');
        q.pop();
        q.schedule_after(0.5, 'b');
        let ev = q.pop().unwrap();
        assert_eq!((ev.time, ev.payload), (2.0, 'b'));
    }

    #[test]
    fn clear_resets_clock() {
        let mut q = EventQueue::new();
        q.schedule(9.0, ());
        q.pop();
        q.clear();
        assert_eq!(q.now(), 0.0);
        assert!(q.try_schedule(0.5, ()).is_ok());
    }

    #[test]
    fn clear_keeps_capacity_for_restarts() {
        let mut q: EventQueue<u32> = EventQueue::with_capacity(512);
        let cap = q.capacity();
        assert!(cap >= 512);
        for i in 0..400 {
            q.schedule(i as f64, i);
        }
        q.clear();
        assert_eq!(q.capacity(), cap, "clear must not shed the allocation");
        assert!(q.is_empty());
        q.reserve(1024);
        assert!(q.capacity() >= 1024);
    }

    #[test]
    fn backends_pop_identical_streams() {
        let mut heap = EventQueue::new();
        let mut cal = EventQueue::with_backend(CalendarQueue::new());
        let times = [4.0, 0.5, 2.25, 2.25, 9.0, 0.5, 7.5, 3.0];
        for (i, &t) in times.iter().enumerate() {
            heap.schedule(t, i);
            cal.schedule(t, i);
        }
        loop {
            let (a, b) = (heap.pop(), cal.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn checkpoint_restore_round_trips_on_both_backends() {
        let times = [4.0, 0.5, 2.25, 2.25, 9.0, 0.5, 7.5, 3.0];
        let mut heap = EventQueue::new();
        let mut cal = EventQueue::with_backend(CalendarQueue::new());
        for (i, &t) in times.iter().enumerate() {
            heap.schedule(t, i);
            cal.schedule(t, i);
        }
        // Pop a prefix, checkpoint mid-drain, drain, restore, drain again:
        // the two post-checkpoint streams must be identical.
        for _ in 0..3 {
            assert_eq!(heap.pop(), cal.pop());
        }
        let cp_h = heap.checkpoint();
        let cp_c = cal.checkpoint();
        assert_eq!(cp_h.time(), cp_c.time());
        assert_eq!(cp_h.len(), 5);
        let first: Vec<_> = std::iter::from_fn(|| heap.pop()).collect();
        heap.restore(&cp_h);
        assert_eq!(heap.now(), cp_h.time());
        let second: Vec<_> = std::iter::from_fn(|| heap.pop()).collect();
        assert_eq!(first, second);
        // Cross-backend restore: the heap checkpoint into the calendar
        // queue pops the same stream.
        cal.restore(&cp_h);
        let cross: Vec<_> = std::iter::from_fn(|| cal.pop()).collect();
        assert_eq!(first, cross);
    }

    #[test]
    fn restored_queue_continues_the_sequence_counter() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 'a');
        q.schedule(1.0, 'b');
        let cp = q.checkpoint();
        let mut fresh: EventQueue<char> = EventQueue::new();
        fresh.restore(&cp);
        // A post-restore schedule at the tied time sorts after both
        // checkpointed events: the counter was restored, not reset.
        fresh.schedule(1.0, 'c');
        let order: Vec<char> = std::iter::from_fn(|| fresh.pop().map(|e| e.payload)).collect();
        assert_eq!(order, ['a', 'b', 'c']);
    }

    #[test]
    fn restore_from_drops_the_dirty_region_and_rewinds_the_clock() {
        let mut q = EventQueue::new();
        for (i, t) in [1.0, 2.0, 3.0, 4.0].into_iter().enumerate() {
            q.schedule(t, i);
        }
        let cp = q.checkpoint();
        // Fast-forward: events before 2.5 are dropped, clock sits at 2.5.
        q.restore_from(&cp, 2.5);
        assert_eq!(q.now(), 2.5);
        assert!(q.try_schedule(2.0, 9).is_err(), "past is closed");
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, [2, 3]);
        // Rewind below the checkpoint clock: everything is retained and
        // the earlier clock re-opens scheduling room.
        q.restore_from(&cp, 0.0);
        assert_eq!(q.now(), 0.0);
        assert_eq!(q.len(), 4);
        q.schedule(0.5, 8);
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, [8, 0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn restore_from_rejects_nan() {
        let q: EventQueue<()> = EventQueue::new();
        let cp = q.checkpoint();
        EventQueue::new().restore_from(&cp, f64::NAN);
    }

    #[test]
    fn empty_checkpoint_is_empty() {
        let q: EventQueue<u8> = EventQueue::new();
        let cp = q.checkpoint();
        assert!(cp.is_empty());
        assert_eq!(cp.entries().len(), 0);
        assert_eq!(cp.time(), 0.0);
    }

    #[test]
    fn calendar_backend_enforces_same_invariants() {
        let mut q = EventQueue::with_backend(CalendarQueue::new());
        assert!(matches!(
            q.try_schedule(f64::NAN, ()),
            Err(ScheduleError::NonFiniteTime { .. })
        ));
        q.schedule(2.0, ());
        q.pop();
        assert!(matches!(
            q.try_schedule(1.0, ()),
            Err(ScheduleError::TimeRegression { .. })
        ));
        assert_eq!(q.backend_name(), "calendar");
    }
}
