//! The monotone pending-event queue at the heart of every simulator.
//!
//! Two invariants are enforced at *enqueue* time so they can never
//! surface as mysterious mis-ordering at pop time:
//!
//! 1. **Totally ordered times** — scheduled times must be finite; NaN is
//!    rejected (a NaN comparison under raw `f64` ordering silently
//!    corrupts a binary heap).
//! 2. **Monotonicity** — an event may not be scheduled before the
//!    current simulation time (the time of the last popped event). This
//!    is exactly the "no negative delays" rule: causes precede effects.
//!
//! Ties are broken by an enqueue sequence number, making pop order fully
//! deterministic across runs, platforms and thread counts.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// A scheduled event popped from an [`EventQueue`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event<T> {
    /// Simulation time of the event.
    pub time: f64,
    /// Enqueue sequence number (the deterministic tie-breaker).
    pub seq: u64,
    /// Caller-defined payload.
    pub payload: T,
}

/// Why [`EventQueue::try_schedule`] refused an event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScheduleError {
    /// The time was NaN or infinite.
    NonFiniteTime {
        /// The offending time.
        time: f64,
    },
    /// The time lies before the current simulation time — a negative
    /// effective delay.
    TimeRegression {
        /// The offending time.
        time: f64,
        /// The queue's current time.
        now: f64,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NonFiniteTime { time } => {
                write!(f, "cannot schedule event at non-finite time {time}")
            }
            ScheduleError::TimeRegression { time, now } => {
                write!(
                    f,
                    "cannot schedule event at {time} before current time {now}"
                )
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Heap entry: min-ordered by `(time, seq)` under a reversed comparison.
#[derive(Clone, Copy, Debug)]
struct Entry<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so the max-heap `BinaryHeap` pops the earliest entry.
        // `total_cmp` keeps the order total even though entry times are
        // already validated finite.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timed events.
///
/// # Examples
///
/// ```
/// use tsg_sim::{EventQueue, ScheduleError};
///
/// let mut q = EventQueue::new();
/// q.schedule(1.5, 'x');
/// assert!(matches!(
///     q.try_schedule(f64::NAN, 'n'),
///     Err(ScheduleError::NonFiniteTime { .. })
/// ));
/// let ev = q.pop().unwrap();
/// assert_eq!((ev.time, ev.payload), (1.5, 'x'));
/// // Popping advanced the clock: the past is closed.
/// assert!(q.try_schedule(1.0, 'y').is_err());
/// ```
#[derive(Clone, Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
    now: f64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue at time `0.0`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// The current simulation time: the time of the last popped event
    /// (`0.0` before the first pop).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute `time`.
    ///
    /// # Errors
    ///
    /// Rejects NaN/infinite times and times before [`EventQueue::now`]
    /// (equivalently: negative delays).
    pub fn try_schedule(&mut self, time: f64, payload: T) -> Result<(), ScheduleError> {
        if !time.is_finite() {
            return Err(ScheduleError::NonFiniteTime { time });
        }
        if time < self.now {
            return Err(ScheduleError::TimeRegression {
                time,
                now: self.now,
            });
        }
        self.seq += 1;
        self.heap.push(Entry {
            time,
            seq: self.seq,
            payload,
        });
        Ok(())
    }

    /// Schedules `payload` at absolute `time`.
    ///
    /// # Panics
    ///
    /// Panics on NaN/infinite times or times before [`EventQueue::now`] —
    /// see [`EventQueue::try_schedule`] for the fallible variant.
    pub fn schedule(&mut self, time: f64, payload: T) {
        if let Err(e) = self.try_schedule(time, payload) {
            panic!("EventQueue::schedule: {e}");
        }
    }

    /// Schedules `payload` after a non-negative `delay` from the current
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is NaN or negative.
    pub fn schedule_after(&mut self, delay: f64, payload: T) {
        assert!(
            delay >= 0.0,
            "EventQueue::schedule_after: delay must be non-negative and not NaN, got {delay}"
        );
        self.schedule(self.now + delay, payload);
    }

    /// Pops the earliest pending event and advances the clock to it.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some(Event {
            time: entry.time,
            seq: entry.seq,
            payload: entry.payload,
        })
    }

    /// The time of the earliest pending event without popping it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Drops all pending events and resets the clock to `0.0`.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
        self.now = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 3);
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn ties_break_by_sequence() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_nan_and_infinite() {
        let mut q = EventQueue::new();
        assert!(matches!(
            q.try_schedule(f64::NAN, ()),
            Err(ScheduleError::NonFiniteTime { .. })
        ));
        assert!(matches!(
            q.try_schedule(f64::INFINITY, ()),
            Err(ScheduleError::NonFiniteTime { .. })
        ));
        assert!(q.is_empty());
    }

    #[test]
    fn rejects_time_regression() {
        let mut q = EventQueue::new();
        q.schedule(2.0, ());
        q.pop();
        assert_eq!(q.now(), 2.0);
        assert_eq!(
            q.try_schedule(1.0, ()),
            Err(ScheduleError::TimeRegression {
                time: 1.0,
                now: 2.0
            })
        );
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn schedule_panics_on_nan() {
        EventQueue::new().schedule(f64::NAN, ());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn schedule_after_panics_on_negative_delay() {
        EventQueue::new().schedule_after(-1.0, ());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn schedule_after_panics_on_nan_delay() {
        EventQueue::new().schedule_after(f64::NAN, ());
    }

    #[test]
    fn schedule_after_accumulates_from_now() {
        let mut q = EventQueue::new();
        q.schedule_after(1.5, 'a');
        q.pop();
        q.schedule_after(0.5, 'b');
        let ev = q.pop().unwrap();
        assert_eq!((ev.time, ev.payload), (2.0, 'b'));
    }

    #[test]
    fn clear_resets_clock() {
        let mut q = EventQueue::new();
        q.schedule(9.0, ());
        q.pop();
        q.clear();
        assert_eq!(q.now(), 0.0);
        assert!(q.try_schedule(0.5, ()).is_ok());
    }
}
