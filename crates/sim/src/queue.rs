//! The monotone pending-event queue at the heart of every simulator.
//!
//! Two invariants are enforced at *enqueue* time so they can never
//! surface as mysterious mis-ordering at pop time:
//!
//! 1. **Totally ordered times** — scheduled times must be finite; NaN is
//!    rejected (a NaN comparison under raw `f64` ordering silently
//!    corrupts a priority queue).
//! 2. **Monotonicity** — an event may not be scheduled before the
//!    current simulation time (the time of the last popped event). This
//!    is exactly the "no negative delays" rule: causes precede effects.
//!
//! Ties are broken by an enqueue sequence number, making pop order fully
//! deterministic across runs, platforms and thread counts.
//!
//! The queue's *storage* is a swappable [`QueueBackend`]: the default
//! [`BinaryHeapQueue`](crate::BinaryHeapQueue) or the bounded-delay-tuned
//! [`CalendarQueue`](crate::CalendarQueue) — both pop bit-identical
//! streams, so a simulator's backend is a performance choice, not a
//! semantic one. `benches/kernel.rs` measures them head-to-head.

use std::fmt;
use std::marker::PhantomData;

use crate::backend::{BinaryHeapQueue, QueueBackend};

/// A scheduled event popped from an [`EventQueue`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event<T> {
    /// Simulation time of the event.
    pub time: f64,
    /// Enqueue sequence number (the deterministic tie-breaker).
    pub seq: u64,
    /// Caller-defined payload.
    pub payload: T,
}

/// Why [`EventQueue::try_schedule`] refused an event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScheduleError {
    /// The time was NaN or infinite.
    NonFiniteTime {
        /// The offending time.
        time: f64,
    },
    /// The time lies before the current simulation time — a negative
    /// effective delay.
    TimeRegression {
        /// The offending time.
        time: f64,
        /// The queue's current time.
        now: f64,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NonFiniteTime { time } => {
                write!(f, "cannot schedule event at non-finite time {time}")
            }
            ScheduleError::TimeRegression { time, now } => {
                write!(
                    f,
                    "cannot schedule event at {time} before current time {now}"
                )
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A deterministic min-priority queue of timed events.
///
/// Generic over its storage [`QueueBackend`] `B`; the default is the
/// binary heap, so `EventQueue<T>` behaves exactly as it always has.
///
/// # Examples
///
/// ```
/// use tsg_sim::{EventQueue, ScheduleError};
///
/// let mut q = EventQueue::new();
/// q.schedule(1.5, 'x');
/// assert!(matches!(
///     q.try_schedule(f64::NAN, 'n'),
///     Err(ScheduleError::NonFiniteTime { .. })
/// ));
/// let ev = q.pop().unwrap();
/// assert_eq!((ev.time, ev.payload), (1.5, 'x'));
/// // Popping advanced the clock: the past is closed.
/// assert!(q.try_schedule(1.0, 'y').is_err());
/// ```
///
/// Running on the calendar backend instead:
///
/// ```
/// use tsg_sim::{CalendarQueue, EventQueue};
///
/// let mut q = EventQueue::with_backend(CalendarQueue::with_delay_bound(4.0));
/// q.schedule(2.0, "b");
/// q.schedule(1.0, "a");
/// assert_eq!(q.pop().unwrap().payload, "a");
/// ```
#[derive(Clone, Debug)]
pub struct EventQueue<T, B = BinaryHeapQueue<T>> {
    backend: B,
    seq: u64,
    now: f64,
    _payload: PhantomData<fn(T) -> T>,
}

impl<T, B: QueueBackend<T> + Default> Default for EventQueue<T, B> {
    fn default() -> Self {
        Self::with_backend(B::default())
    }
}

impl<T> EventQueue<T> {
    /// An empty binary-heap queue at time `0.0`.
    pub fn new() -> Self {
        Self::with_backend(BinaryHeapQueue::new())
    }

    /// An empty binary-heap queue with room for `capacity` pending
    /// events — sized once, a restartable simulator never regrows it.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_backend(BinaryHeapQueue::with_capacity(capacity))
    }
}

impl<T, B: QueueBackend<T>> EventQueue<T, B> {
    /// An empty queue at time `0.0` over the given storage backend.
    pub fn with_backend(backend: B) -> Self {
        EventQueue {
            backend,
            seq: 0,
            now: 0.0,
            _payload: PhantomData,
        }
    }

    /// The current simulation time: the time of the last popped event
    /// (`0.0` before the first pop).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.backend.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.backend.is_empty()
    }

    /// The backend's label (`"binary_heap"`, `"calendar"`).
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// The storage backend, for introspection (kind, capacity) by
    /// simulators that keep warm queues across runs.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Schedules `payload` at absolute `time`.
    ///
    /// # Errors
    ///
    /// Rejects NaN/infinite times and times before [`EventQueue::now`]
    /// (equivalently: negative delays).
    pub fn try_schedule(&mut self, time: f64, payload: T) -> Result<(), ScheduleError> {
        if !time.is_finite() {
            return Err(ScheduleError::NonFiniteTime { time });
        }
        if time < self.now {
            return Err(ScheduleError::TimeRegression {
                time,
                now: self.now,
            });
        }
        self.seq += 1;
        self.backend.push(time, self.seq, payload);
        Ok(())
    }

    /// Schedules `payload` at absolute `time`.
    ///
    /// # Panics
    ///
    /// Panics on NaN/infinite times or times before [`EventQueue::now`] —
    /// see [`EventQueue::try_schedule`] for the fallible variant.
    pub fn schedule(&mut self, time: f64, payload: T) {
        if let Err(e) = self.try_schedule(time, payload) {
            panic!("EventQueue::schedule: {e}");
        }
    }

    /// Schedules `payload` after a non-negative `delay` from the current
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is NaN or negative.
    pub fn schedule_after(&mut self, delay: f64, payload: T) {
        assert!(
            delay >= 0.0,
            "EventQueue::schedule_after: delay must be non-negative and not NaN, got {delay}"
        );
        self.schedule(self.now + delay, payload);
    }

    /// Pops the earliest pending event and advances the clock to it.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let event = self.backend.pop_min()?;
        self.now = event.time;
        Some(event)
    }

    /// The time of the earliest pending event without popping it.
    pub fn peek_time(&self) -> Option<f64> {
        self.backend.peek_time()
    }

    /// Drops all pending events and resets the clock to `0.0`, keeping
    /// the backend's allocations — restarting a simulator over the same
    /// queue costs no reallocation.
    pub fn clear(&mut self) {
        self.backend.clear();
        self.seq = 0;
        self.now = 0.0;
    }

    /// Pre-allocates room for `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.backend.reserve(additional);
    }

    /// Pending events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.backend.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::CalendarQueue;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 3);
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn ties_break_by_sequence() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_nan_and_infinite() {
        let mut q = EventQueue::new();
        assert!(matches!(
            q.try_schedule(f64::NAN, ()),
            Err(ScheduleError::NonFiniteTime { .. })
        ));
        assert!(matches!(
            q.try_schedule(f64::INFINITY, ()),
            Err(ScheduleError::NonFiniteTime { .. })
        ));
        assert!(q.is_empty());
    }

    #[test]
    fn rejects_time_regression() {
        let mut q = EventQueue::new();
        q.schedule(2.0, ());
        q.pop();
        assert_eq!(q.now(), 2.0);
        assert_eq!(
            q.try_schedule(1.0, ()),
            Err(ScheduleError::TimeRegression {
                time: 1.0,
                now: 2.0
            })
        );
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn schedule_panics_on_nan() {
        EventQueue::new().schedule(f64::NAN, ());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn schedule_after_panics_on_negative_delay() {
        EventQueue::new().schedule_after(-1.0, ());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn schedule_after_panics_on_nan_delay() {
        EventQueue::new().schedule_after(f64::NAN, ());
    }

    #[test]
    fn schedule_after_accumulates_from_now() {
        let mut q = EventQueue::new();
        q.schedule_after(1.5, 'a');
        q.pop();
        q.schedule_after(0.5, 'b');
        let ev = q.pop().unwrap();
        assert_eq!((ev.time, ev.payload), (2.0, 'b'));
    }

    #[test]
    fn clear_resets_clock() {
        let mut q = EventQueue::new();
        q.schedule(9.0, ());
        q.pop();
        q.clear();
        assert_eq!(q.now(), 0.0);
        assert!(q.try_schedule(0.5, ()).is_ok());
    }

    #[test]
    fn clear_keeps_capacity_for_restarts() {
        let mut q: EventQueue<u32> = EventQueue::with_capacity(512);
        let cap = q.capacity();
        assert!(cap >= 512);
        for i in 0..400 {
            q.schedule(i as f64, i);
        }
        q.clear();
        assert_eq!(q.capacity(), cap, "clear must not shed the allocation");
        assert!(q.is_empty());
        q.reserve(1024);
        assert!(q.capacity() >= 1024);
    }

    #[test]
    fn backends_pop_identical_streams() {
        let mut heap = EventQueue::new();
        let mut cal = EventQueue::with_backend(CalendarQueue::new());
        let times = [4.0, 0.5, 2.25, 2.25, 9.0, 0.5, 7.5, 3.0];
        for (i, &t) in times.iter().enumerate() {
            heap.schedule(t, i);
            cal.schedule(t, i);
        }
        loop {
            let (a, b) = (heap.pop(), cal.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn calendar_backend_enforces_same_invariants() {
        let mut q = EventQueue::with_backend(CalendarQueue::new());
        assert!(matches!(
            q.try_schedule(f64::NAN, ()),
            Err(ScheduleError::NonFiniteTime { .. })
        ));
        q.schedule(2.0, ());
        q.pop();
        assert!(matches!(
            q.try_schedule(1.0, ()),
            Err(ScheduleError::TimeRegression { .. })
        ));
        assert_eq!(q.backend_name(), "calendar");
    }
}
