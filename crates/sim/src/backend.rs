//! Swappable storage backends for the pending-event queue.
//!
//! [`EventQueue`](crate::EventQueue) enforces the *semantics* of event
//! scheduling — finite times, monotonicity, deterministic `(time, seq)`
//! tie-breaking — while a [`QueueBackend`] provides the *storage*. The
//! split exists so the priority-queue data structure can be chosen per
//! simulator and measured head-to-head (`benches/kernel.rs`) instead of
//! guessed:
//!
//! * [`BinaryHeapQueue`] — the default `std::collections::BinaryHeap`:
//!   `O(log n)` push/pop, robust for any time distribution.
//! * [`CalendarQueue`](crate::CalendarQueue) — a bucketed calendar queue
//!   tuned for the bounded-delay distributions gate libraries produce:
//!   amortised `O(1)` push/pop when pending times stay within a bounded
//!   window of the current time.
//! * [`AnyQueue`] — a runtime-selectable wrapper over both, so CLI flags
//!   and per-simulator configuration can pick a backend without
//!   monomorphising every consumer.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::str::FromStr;

use crate::calendar::CalendarQueue;
use crate::queue::Event;

/// Priority-queue storage contract used by [`EventQueue`](crate::EventQueue).
///
/// # Contract
///
/// The wrapper guarantees that `push` is only called with finite `time`
/// no earlier than the time of the last popped entry (negative times are
/// legal before the first pop), and that `seq` is strictly increasing
/// across pushes. In return a backend must:
///
/// * enforce the finite-time policy itself — every backend's `push`
///   panics on NaN/infinite times with the same message, so a backend
///   driven directly (outside the [`EventQueue`](crate::EventQueue)
///   wrapper) can never smuggle a non-finite time into its internal
///   arithmetic;
/// * pop entries in ascending `(time, seq)` order — bit-identical pop
///   streams across backends are what the cross-backend tests assert;
/// * retain its allocations on [`clear`](QueueBackend::clear), so
///   restartable simulators reuse capacity across runs instead of
///   regrowing it.
pub trait QueueBackend<T> {
    /// Inserts an entry. `time` must be finite (every implementation
    /// panics otherwise) and `>=` the last popped time.
    fn push(&mut self, time: f64, seq: u64, payload: T);
    /// Removes and returns the entry with the smallest `(time, seq)`.
    fn pop_min(&mut self) -> Option<Event<T>>;
    /// The smallest pending time, if any.
    fn peek_time(&self) -> Option<f64>;
    /// Number of pending entries.
    fn len(&self) -> usize;
    /// Whether no entries are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Drops all entries and resets time-tracking state to `t = 0`,
    /// keeping allocations.
    fn clear(&mut self);
    /// Pre-allocates room for `additional` more entries.
    fn reserve(&mut self, additional: usize);
    /// Total entries the backend can hold without reallocating.
    fn capacity(&self) -> usize;
    /// Short label for benchmark output (`"binary_heap"`, `"calendar"`).
    fn name(&self) -> &'static str;
    /// Visits every pending entry as `(time, seq, payload)`, in no
    /// particular order — the storage-agnostic hook
    /// [`EventQueue::checkpoint`](crate::EventQueue::checkpoint)
    /// snapshots through. Canonicalising the order is the caller's job.
    fn visit_entries(&self, visit: &mut dyn FnMut(f64, u64, &T));
}

/// Heap entry: min-ordered by `(time, seq)` under a reversed comparison.
#[derive(Clone, Copy, Debug)]
struct Entry<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so the max-heap `BinaryHeap` pops the earliest entry.
        // `total_cmp` keeps the order total even though entry times are
        // already validated finite.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The default backend: a binary heap with `O(log n)` push and pop.
#[derive(Clone, Debug)]
pub struct BinaryHeapQueue<T> {
    heap: BinaryHeap<Entry<T>>,
}

impl<T> Default for BinaryHeapQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> BinaryHeapQueue<T> {
    /// An empty heap backend.
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// An empty heap backend with room for `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::with_capacity(capacity),
        }
    }
}

impl<T> QueueBackend<T> for BinaryHeapQueue<T> {
    fn push(&mut self, time: f64, seq: u64, payload: T) {
        assert!(
            time.is_finite(),
            "queue backend time must be finite, got {time}"
        );
        self.heap.push(Entry { time, seq, payload });
    }

    fn pop_min(&mut self) -> Option<Event<T>> {
        self.heap.pop().map(|e| Event {
            time: e.time,
            seq: e.seq,
            payload: e.payload,
        })
    }

    fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn clear(&mut self) {
        self.heap.clear();
    }

    fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    fn name(&self) -> &'static str {
        "binary_heap"
    }

    fn visit_entries(&self, visit: &mut dyn FnMut(f64, u64, &T)) {
        for e in self.heap.iter() {
            visit(e.time, e.seq, &e.payload);
        }
    }
}

/// Which queue backend a simulator should run on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueKind {
    /// The [`BinaryHeapQueue`] backend (the safe default).
    #[default]
    Heap,
    /// The [`CalendarQueue`] backend (fastest for bounded-delay loads).
    Calendar,
}

impl FromStr for QueueKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "heap" | "binary_heap" => Ok(QueueKind::Heap),
            "calendar" => Ok(QueueKind::Calendar),
            other => Err(format!(
                "unknown queue backend {other:?} (expected `heap` or `calendar`)"
            )),
        }
    }
}

impl fmt::Display for QueueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            QueueKind::Heap => "heap",
            QueueKind::Calendar => "calendar",
        })
    }
}

/// Runtime-selectable backend: one of the static backends behind a match.
///
/// Simulators that expose backend choice as configuration (`tsg sim
/// --queue calendar`) hold an `AnyQueue` so a flag, not a type parameter,
/// picks the data structure. The per-operation dispatch is a predictable
/// two-way branch; the head-to-head benchmarks measure the static
/// backends directly.
#[derive(Clone, Debug)]
pub enum AnyQueue<T> {
    /// Binary-heap storage.
    Heap(BinaryHeapQueue<T>),
    /// Calendar-queue storage.
    Calendar(CalendarQueue<T>),
}

impl<T> AnyQueue<T> {
    /// A backend of the given kind.
    pub fn of(kind: QueueKind) -> Self {
        match kind {
            QueueKind::Heap => AnyQueue::Heap(BinaryHeapQueue::new()),
            QueueKind::Calendar => AnyQueue::Calendar(CalendarQueue::new()),
        }
    }

    /// The kind of this backend.
    pub fn kind(&self) -> QueueKind {
        match self {
            AnyQueue::Heap(_) => QueueKind::Heap,
            AnyQueue::Calendar(_) => QueueKind::Calendar,
        }
    }
}

impl<T> Default for AnyQueue<T> {
    fn default() -> Self {
        AnyQueue::of(QueueKind::default())
    }
}

impl<T> QueueBackend<T> for AnyQueue<T> {
    fn push(&mut self, time: f64, seq: u64, payload: T) {
        match self {
            AnyQueue::Heap(b) => b.push(time, seq, payload),
            AnyQueue::Calendar(b) => b.push(time, seq, payload),
        }
    }

    fn pop_min(&mut self) -> Option<Event<T>> {
        match self {
            AnyQueue::Heap(b) => b.pop_min(),
            AnyQueue::Calendar(b) => b.pop_min(),
        }
    }

    fn peek_time(&self) -> Option<f64> {
        match self {
            AnyQueue::Heap(b) => b.peek_time(),
            AnyQueue::Calendar(b) => b.peek_time(),
        }
    }

    fn len(&self) -> usize {
        match self {
            AnyQueue::Heap(b) => b.len(),
            AnyQueue::Calendar(b) => b.len(),
        }
    }

    fn clear(&mut self) {
        match self {
            AnyQueue::Heap(b) => QueueBackend::<T>::clear(b),
            AnyQueue::Calendar(b) => QueueBackend::<T>::clear(b),
        }
    }

    fn reserve(&mut self, additional: usize) {
        match self {
            AnyQueue::Heap(b) => QueueBackend::<T>::reserve(b, additional),
            AnyQueue::Calendar(b) => QueueBackend::<T>::reserve(b, additional),
        }
    }

    fn capacity(&self) -> usize {
        match self {
            AnyQueue::Heap(b) => QueueBackend::<T>::capacity(b),
            AnyQueue::Calendar(b) => QueueBackend::<T>::capacity(b),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            AnyQueue::Heap(b) => b.name(),
            AnyQueue::Calendar(b) => b.name(),
        }
    }

    fn visit_entries(&self, visit: &mut dyn FnMut(f64, u64, &T)) {
        match self {
            AnyQueue::Heap(b) => b.visit_entries(visit),
            AnyQueue::Calendar(b) => b.visit_entries(visit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_kind_parses() {
        assert_eq!("heap".parse::<QueueKind>().unwrap(), QueueKind::Heap);
        assert_eq!(
            "calendar".parse::<QueueKind>().unwrap(),
            QueueKind::Calendar
        );
        assert!("fibonacci".parse::<QueueKind>().is_err());
        assert_eq!(QueueKind::Calendar.to_string(), "calendar");
    }

    #[test]
    fn any_queue_reports_kind_and_name() {
        let q: AnyQueue<u32> = AnyQueue::of(QueueKind::Calendar);
        assert_eq!(q.kind(), QueueKind::Calendar);
        assert_eq!(q.name(), "calendar");
        let q: AnyQueue<u32> = AnyQueue::default();
        assert_eq!(q.kind(), QueueKind::Heap);
        assert_eq!(q.name(), "binary_heap");
    }

    #[test]
    fn backends_reject_non_finite_times_identically() {
        // One finite-time policy, enforced at push in every backend with
        // the same message — a backend driven directly can never differ
        // from another about which times are representable.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let heap = std::panic::catch_unwind(|| {
                BinaryHeapQueue::new().push(bad, 1, 0u32);
            })
            .unwrap_err();
            let cal = std::panic::catch_unwind(|| {
                CalendarQueue::new().push(bad, 1, 0u32);
            })
            .unwrap_err();
            let msg = |p: Box<dyn std::any::Any + Send>| {
                p.downcast::<String>().map(|s| *s).unwrap_or_default()
            };
            assert_eq!(msg(heap), msg(cal));
        }
    }

    #[test]
    fn heap_backend_pops_in_order_and_keeps_capacity() {
        let mut b: BinaryHeapQueue<u32> = BinaryHeapQueue::with_capacity(64);
        for (i, t) in [3.0, 1.0, 2.0, 1.0].iter().enumerate() {
            b.push(*t, i as u64, i as u32);
        }
        let order: Vec<u32> = std::iter::from_fn(|| b.pop_min().map(|e| e.payload)).collect();
        assert_eq!(order, [1, 3, 2, 0]);
        let cap = QueueBackend::<u32>::capacity(&b);
        assert!(cap >= 64);
        QueueBackend::<u32>::clear(&mut b);
        assert_eq!(QueueBackend::<u32>::capacity(&b), cap);
    }
}
