//! # tsg-sim — the shared event-simulation kernel
//!
//! Every simulator in the workspace — the gate-level transport-delay
//! netlist simulator in `tsg-circuit`, the kernel-backed Timed Signal
//! Graph event simulation in `tsg-core`, and the long-run estimator in
//! `tsg-baselines` — runs on the three primitives in this crate:
//!
//! * [`EventQueue`] — a monotone pending-event queue with deterministic
//!   `(time, seq)` tie-breaking and a NaN-rejecting total order. Times
//!   never go backwards and never go undefined, by construction: invalid
//!   schedules are rejected at enqueue time, not discovered at pop time.
//!   Storage is a swappable [`QueueBackend`] — the default
//!   [`BinaryHeapQueue`], a [`CalendarQueue`] tuned for bounded-delay
//!   loads, or the runtime-selectable [`AnyQueue`] — all popping
//!   bit-identical streams.
//! * [`TraceRecorder`] — captures timed signal transitions during (or
//!   after) a simulation and dumps them as a VCD waveform any standard
//!   viewer (GTKWave, Surfer) can open.
//! * [`BatchRunner`] — fans many independent scenarios (different seeds,
//!   netlists or delay assignments) out across OS threads with
//!   [`std::thread::scope`], preserving input order in the results.
//!
//! The kernel is deliberately free of Signal-Graph or netlist semantics:
//! payloads are caller-defined, signals are plain names, scenarios are
//! plain closures. That is what lets one queue implementation serve both
//! simulators and every future backend.
//!
//! # Example
//!
//! ```
//! use tsg_sim::EventQueue;
//!
//! let mut q = EventQueue::new();
//! q.schedule(2.0, "b");
//! q.schedule(1.0, "a");
//! q.schedule(2.0, "c"); // same time: FIFO by sequence number
//! let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
//! assert_eq!(order, ["a", "b", "c"]);
//! ```

pub mod backend;
pub mod batch;
pub mod calendar;
pub mod cancel;
pub mod queue;
pub mod trace;

pub use backend::{AnyQueue, BinaryHeapQueue, QueueBackend, QueueKind};
pub use batch::BatchRunner;
pub use calendar::CalendarQueue;
pub use cancel::{CancelKind, CancelToken};
pub use queue::{Event, EventQueue, QueueCheckpoint, ScheduleError};
pub use trace::{TraceId, TraceRecorder};
