//! Parallel execution of many independent simulation scenarios.
//!
//! Cycle-time sweeps, seed studies and design-space exploration all have
//! the same shape: N completely independent simulations, each a pure
//! function of its scenario description. [`BatchRunner`] runs them
//! across OS threads with [`std::thread::scope`] — no runtime
//! dependency, no work queue to configure — and returns results in input
//! order, so a batch is observably identical to a sequential loop, just
//! faster.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Runs independent scenarios across a fixed pool of scoped threads.
///
/// # Examples
///
/// ```
/// use tsg_sim::BatchRunner;
///
/// let scenarios: Vec<u64> = (0..32).collect();
/// let squares = BatchRunner::with_threads(4).run(&scenarios, |&s| s * s);
/// assert_eq!(squares[7], 49);
/// assert_eq!(squares.len(), 32);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct BatchRunner {
    threads: usize,
}

impl Default for BatchRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchRunner {
    /// A runner sized to the machine's available parallelism.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        BatchRunner { threads }
    }

    /// A runner with exactly `threads` workers (`threads >= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads >= 1, "BatchRunner needs at least one thread");
        BatchRunner { threads }
    }

    /// The one pool-sizing rule of the workspace: an explicit request
    /// (a `--threads N` flag) wins, otherwise the machine's available
    /// parallelism. Every CLI and batch API resolves its thread count
    /// here instead of rolling its own.
    ///
    /// # Panics
    ///
    /// Panics if `Some(0)` is requested.
    pub fn sized(threads: Option<usize>) -> Self {
        match threads {
            Some(n) => Self::with_threads(n),
            None => Self::new(),
        }
    }

    /// Parses the value of a `--threads N` flag — the other half of the
    /// pool-sizing rule, shared by every binary so they all accept and
    /// reject the same inputs.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message when the value is missing, not an
    /// integer, or zero.
    pub fn parse_threads(value: Option<&str>) -> Result<usize, String> {
        value
            .and_then(|v| v.parse().ok())
            .filter(|&n: &usize| n >= 1)
            .ok_or_else(|| "--threads needs a positive integer".to_owned())
    }

    /// The number of worker threads this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every scenario, in parallel, preserving input
    /// order in the returned vector.
    ///
    /// Workers claim scenarios through an atomic cursor, so imbalanced
    /// workloads still saturate all threads. A panic inside `f`
    /// propagates out of `run` once the scope joins.
    pub fn run<T, R, F>(&self, scenarios: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.run_with_state(scenarios, || (), |(), s| f(s))
    }

    /// Like [`BatchRunner::run`], with a per-worker scratch state.
    ///
    /// `init` runs once on each worker thread; the resulting state is
    /// handed mutably to every scenario that worker claims. This is how
    /// allocation-reusing sweeps work: the state is an arena (e.g.
    /// `tsg-core`'s `SimArena`), warmed by the first scenario and reused
    /// by every later one, so a thousand-scenario sweep performs a
    /// thread-count's worth of allocations instead of a thousand.
    ///
    /// The state must not influence results (it is scratch space):
    /// scenarios are claimed dynamically, so which worker — and hence
    /// which state instance — processes a scenario is scheduling-
    /// dependent.
    pub fn run_with_state<S, T, R, I, F>(&self, scenarios: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &T) -> R + Sync,
    {
        if scenarios.is_empty() {
            return Vec::new();
        }
        let workers = self.threads.min(scenarios.len());
        if workers == 1 {
            let mut state = init();
            return scenarios.iter().map(|s| f(&mut state, s)).collect();
        }

        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        // Results are assembled inside the scope but unwrapped only after
        // it joins, so a worker panic surfaces as itself rather than as a
        // missing-result error.
        let results: Vec<Option<R>> = std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let init = &init;
                let f = &f;
                scope.spawn(move || {
                    let mut state = init();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(scenario) = scenarios.get(i) else {
                            break;
                        };
                        if tx.send((i, f(&mut state, scenario))).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);

            let mut results: Vec<Option<R>> = Vec::with_capacity(scenarios.len());
            results.resize_with(scenarios.len(), || None);
            for (i, r) in rx {
                results[i] = Some(r);
            }
            results
        });
        results
            .into_iter()
            .map(|r| r.expect("every scenario index is claimed exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 8] {
            let out = BatchRunner::with_threads(threads).run(&items, |&x| x * 3);
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn actually_uses_multiple_threads() {
        let ids = Mutex::new(HashSet::new());
        let items: Vec<u32> = (0..64).collect();
        BatchRunner::with_threads(4).run(&items, |_| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        assert!(ids.lock().unwrap().len() > 1);
    }

    #[test]
    fn empty_batch() {
        let out: Vec<u32> = BatchRunner::new().run(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = BatchRunner::with_threads(16).run(&[1, 2, 3], |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = BatchRunner::with_threads(0);
    }

    #[test]
    fn sized_resolves_explicit_and_default() {
        assert_eq!(BatchRunner::sized(Some(3)).threads(), 3);
        assert_eq!(
            BatchRunner::sized(None).threads(),
            BatchRunner::new().threads()
        );
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(BatchRunner::parse_threads(Some("4")), Ok(4));
        assert!(BatchRunner::parse_threads(Some("0")).is_err());
        assert!(BatchRunner::parse_threads(Some("four")).is_err());
        assert!(BatchRunner::parse_threads(Some("-2")).is_err());
        assert!(BatchRunner::parse_threads(None).is_err());
    }

    #[test]
    fn per_worker_state_is_reused_not_shared() {
        // Each worker counts the scenarios it processed in its own state;
        // states never mix, and together they cover the batch exactly.
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 4] {
            let out = BatchRunner::with_threads(threads).run_with_state(
                &items,
                || 0usize,
                |seen, &x| {
                    *seen += 1;
                    (x, *seen)
                },
            );
            assert_eq!(out.len(), 64);
            // Results stay in input order regardless of which state
            // processed them.
            assert!(out.iter().enumerate().all(|(i, &(x, _))| x == i));
            // Every worker's per-state counter covered the whole batch.
            let total_seen = out.iter().map(|&(_, seen)| seen).max().unwrap();
            assert!(total_seen >= 64 / threads.max(1));
        }
    }

    #[test]
    fn state_init_runs_per_worker() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let items: Vec<u32> = (0..16).collect();
        BatchRunner::with_threads(4).run_with_state(
            &items,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
            },
            |(), &x| x,
        );
        let n = inits.load(Ordering::Relaxed);
        assert!((1..=4).contains(&n), "init ran {n} times");
    }

    #[test]
    fn worker_panic_propagates() {
        let outcome = std::panic::catch_unwind(|| {
            BatchRunner::with_threads(2).run(&[1u32, 2, 3, 4], |&x| {
                if x == 3 {
                    panic!("scenario failure");
                }
                x
            });
        });
        assert!(outcome.is_err());
    }
}
