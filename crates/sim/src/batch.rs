//! Parallel execution of many independent simulation scenarios.
//!
//! Cycle-time sweeps, seed studies and design-space exploration all have
//! the same shape: N completely independent simulations, each a pure
//! function of its scenario description. [`BatchRunner`] runs them
//! across OS threads with [`std::thread::scope`] — no runtime
//! dependency, no work queue to configure — and returns results in input
//! order, so a batch is observably identical to a sequential loop, just
//! faster.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Runs independent scenarios across a fixed pool of scoped threads.
///
/// # Examples
///
/// ```
/// use tsg_sim::BatchRunner;
///
/// let scenarios: Vec<u64> = (0..32).collect();
/// let squares = BatchRunner::with_threads(4).run(&scenarios, |&s| s * s);
/// assert_eq!(squares[7], 49);
/// assert_eq!(squares.len(), 32);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct BatchRunner {
    threads: usize,
}

impl Default for BatchRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchRunner {
    /// A runner sized to the machine's available parallelism.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        BatchRunner { threads }
    }

    /// A runner with exactly `threads` workers (`threads >= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads >= 1, "BatchRunner needs at least one thread");
        BatchRunner { threads }
    }

    /// The number of worker threads this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every scenario, in parallel, preserving input
    /// order in the returned vector.
    ///
    /// Workers claim scenarios through an atomic cursor, so imbalanced
    /// workloads still saturate all threads. A panic inside `f`
    /// propagates out of `run` once the scope joins.
    pub fn run<T, R, F>(&self, scenarios: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if scenarios.is_empty() {
            return Vec::new();
        }
        let workers = self.threads.min(scenarios.len());
        if workers == 1 {
            return scenarios.iter().map(&f).collect();
        }

        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        // Results are assembled inside the scope but unwrapped only after
        // it joins, so a worker panic surfaces as itself rather than as a
        // missing-result error.
        let results: Vec<Option<R>> = std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(scenario) = scenarios.get(i) else {
                        break;
                    };
                    if tx.send((i, f(scenario))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);

            let mut results: Vec<Option<R>> = Vec::with_capacity(scenarios.len());
            results.resize_with(scenarios.len(), || None);
            for (i, r) in rx {
                results[i] = Some(r);
            }
            results
        });
        results
            .into_iter()
            .map(|r| r.expect("every scenario index is claimed exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 8] {
            let out = BatchRunner::with_threads(threads).run(&items, |&x| x * 3);
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn actually_uses_multiple_threads() {
        let ids = Mutex::new(HashSet::new());
        let items: Vec<u32> = (0..64).collect();
        BatchRunner::with_threads(4).run(&items, |_| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        assert!(ids.lock().unwrap().len() > 1);
    }

    #[test]
    fn empty_batch() {
        let out: Vec<u32> = BatchRunner::new().run(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = BatchRunner::with_threads(16).run(&[1, 2, 3], |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = BatchRunner::with_threads(0);
    }

    #[test]
    fn worker_panic_propagates() {
        let outcome = std::panic::catch_unwind(|| {
            BatchRunner::with_threads(2).run(&[1u32, 2, 3, 4], |&x| {
                if x == 3 {
                    panic!("scenario failure");
                }
                x
            });
        });
        assert!(outcome.is_err());
    }
}
