//! Cooperative cancellation for long-running simulations.
//!
//! A [`CancelToken`] carries everything a kernel loop needs to decide
//! "should this run keep going?" in one cheap, lock-free check: an
//! explicit per-request cancel flag, an optional shared *group* flag (a
//! draining server trips one flag to abort every in-flight request), an
//! optional wall-clock deadline, and an optional check budget for
//! deterministic test aborts. Kernels poll [`CancelToken::check`] at a
//! coarse granularity — once per simulation row or every few hundred
//! queue pops — so the steady-state cost is an atomic load or two, and
//! an abort is observed within one unit of that granularity.
//!
//! Cancellation is *cooperative*: nothing is torn down. The interrupted
//! computation returns a structured "how far I got" error and leaves its
//! scratch state reusable; it is the caller's contract (see
//! `AnalysisSession` in `tsg-core`) that a later uncancelled run heals
//! any partially-written state bit-identically.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a [`CancelToken`] fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CancelKind {
    /// [`CancelToken::cancel`] was called, the token's group flag was
    /// tripped, or a test check budget ran out.
    Explicit,
    /// The wall-clock deadline passed.
    Deadline,
}

impl std::fmt::Display for CancelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelKind::Explicit => f.write_str("cancelled"),
            CancelKind::Deadline => f.write_str("deadline exceeded"),
        }
    }
}

/// A cheap, clonable cancellation signal threaded into kernel loops.
///
/// Clones share the same underlying flags: cancelling one clone cancels
/// every holder, and parallel workers can all poll the same token.
///
/// # Examples
///
/// ```
/// use tsg_sim::{CancelKind, CancelToken};
///
/// let token = CancelToken::new();
/// assert_eq!(token.check(), None);
/// token.cancel();
/// assert_eq!(token.check(), Some(CancelKind::Explicit));
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    group: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
    /// Checks remaining before the token trips (deterministic test
    /// aborts); `None` means unlimited.
    budget: Option<Arc<AtomicU64>>,
}

impl CancelToken {
    /// A token that never fires until [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that fires `timeout` from now (or earlier, if cancelled).
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken {
            deadline: Instant::now().checked_add(timeout),
            ..Self::default()
        }
    }

    /// A token that fires after `checks` calls to [`CancelToken::check`]
    /// have passed — the deterministic abort hook for tests: a budget of
    /// `n` lets exactly `n` checks through, then trips as `Explicit`.
    pub fn cancel_after_checks(checks: u64) -> Self {
        CancelToken {
            budget: Some(Arc::new(AtomicU64::new(checks))),
            ..Self::default()
        }
    }

    /// Attaches a shared group flag: when `group` stores `true`, every
    /// token attached to it reports `Explicit`. A draining server trips
    /// one flag to cancel all in-flight work without tracking tokens.
    pub fn in_group(mut self, group: &Arc<AtomicBool>) -> Self {
        self.group = Some(Arc::clone(group));
        self
    }

    /// Trips this token (and every clone of it) as `Explicit`.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// The remaining time before the deadline fires, if one is set.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Polls the token: `None` to keep going, or the kind of
    /// cancellation observed. Kernels call this at row/batch
    /// granularity; the cost is one or two relaxed atomic loads (plus a
    /// clock read when a deadline is set).
    #[inline]
    pub fn check(&self) -> Option<CancelKind> {
        if self.flag.load(Ordering::Relaxed) {
            return Some(CancelKind::Explicit);
        }
        if let Some(group) = &self.group {
            if group.load(Ordering::Relaxed) {
                return Some(CancelKind::Explicit);
            }
        }
        if let Some(budget) = &self.budget {
            let out = budget
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
                .is_err();
            if out {
                return Some(CancelKind::Explicit);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(CancelKind::Deadline);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tokens_never_fire() {
        let token = CancelToken::new();
        for _ in 0..100 {
            assert_eq!(token.check(), None);
        }
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        clone.cancel();
        assert_eq!(token.check(), Some(CancelKind::Explicit));
        assert_eq!(clone.check(), Some(CancelKind::Explicit));
    }

    #[test]
    fn expired_deadline_reports_deadline_kind() {
        let token = CancelToken::with_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(token.check(), Some(CancelKind::Deadline));
        // Explicit cancel outranks the deadline in reporting.
        token.cancel();
        assert_eq!(token.check(), Some(CancelKind::Explicit));
    }

    #[test]
    fn check_budget_trips_after_exactly_n_checks() {
        let token = CancelToken::cancel_after_checks(3);
        for _ in 0..3 {
            assert_eq!(token.check(), None);
        }
        assert_eq!(token.check(), Some(CancelKind::Explicit));
        assert_eq!(token.check(), Some(CancelKind::Explicit));
    }

    #[test]
    fn group_flag_trips_every_attached_token() {
        let group = Arc::new(AtomicBool::new(false));
        let a = CancelToken::new().in_group(&group);
        let b = CancelToken::new().in_group(&group);
        assert_eq!(a.check(), None);
        group.store(true, Ordering::Relaxed);
        assert_eq!(a.check(), Some(CancelKind::Explicit));
        assert_eq!(b.check(), Some(CancelKind::Explicit));
    }

    #[test]
    fn remaining_counts_down() {
        assert_eq!(CancelToken::new().remaining(), None);
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        let left = token.remaining().unwrap();
        assert!(left <= Duration::from_secs(3600));
        assert!(left > Duration::from_secs(3590));
    }
}
