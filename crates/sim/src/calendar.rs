//! A bucketed calendar queue (Brown 1988) tuned for bounded-delay loads.
//!
//! Gate libraries schedule events a *bounded* delay ahead of the current
//! time, so at any instant the pending set occupies a narrow time window
//! `[now, now + D]`. A calendar queue exploits exactly that: time is cut
//! into fixed-width "days" arranged in a circular year of buckets; a push
//! hashes the event into its day's bucket in `O(1)`, and a pop scans
//! forward from the current day, which for a dense bounded window finds
//! the minimum after inspecting `O(1)` entries on average. The structure
//! resizes itself — doubling or halving the bucket count and re-deriving
//! the day width from the observed time span — to keep the average
//! bucket occupancy constant as the load changes.
//!
//! Every entry carries its day index, computed once at insertion, and
//! the pop scan matches on that stored index rather than re-deriving a
//! window from floating-point arithmetic — so bucketing and scanning can
//! never disagree about boundary times, and the pop stream is
//! bit-identical to the binary-heap backend's `(time, seq)` order. Days
//! are signed and floor-derived, so negative times (legal before the
//! first pop) bucket monotonically instead of aliasing with day 0, and
//! non-finite times are rejected at `push` under the same policy as
//! every other backend. A full year scanned without a candidate (a
//! sparse far-future set) falls back to a direct minimum search, so the
//! worst case stays `O(n)` per pop rather than unbounded.
//!
//! Known trade-off: `k` events sharing one *exact* time all land in one
//! day, and each pop rescans the survivors — `O(k)` per pop, `O(k²)` to
//! drain the burst — and no resize can split a zero-span day. Tie-heavy
//! loads (unit-delay graphs where whole generations fire at integer
//! times) are therefore the heap backend's home turf; measuring that
//! contrast per workload is what `benches/kernel.rs` is for.

use crate::backend::QueueBackend;
use crate::queue::Event;

/// Smallest number of buckets the calendar keeps.
const MIN_BUCKETS: usize = 8;

/// One stored entry: the event plus its precomputed day index.
#[derive(Clone, Debug)]
struct Slot<T> {
    day: i64,
    event: Event<T>,
}

/// A calendar-queue priority structure; see the module docs.
#[derive(Clone, Debug)]
pub struct CalendarQueue<T> {
    /// Circular year of unsorted buckets; a slot with day `d` lives in
    /// bucket `d % buckets.len()`.
    buckets: Vec<Vec<Slot<T>>>,
    /// Day width in simulation-time units.
    width: f64,
    /// Total pending entries.
    len: usize,
    /// A lower bound on all pending times: the time of the last popped
    /// entry, lowered by any push below it (pre-pop pushes may carry
    /// negative times — the backend contract only floors times at the
    /// last *popped* time).
    last: f64,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// An empty calendar with unit day width.
    pub fn new() -> Self {
        Self::with_width(1.0)
    }

    /// An empty calendar with the given day `width`.
    ///
    /// The width is a performance hint, not a correctness parameter: any
    /// positive finite value pops the same stream. Resizes re-derive it
    /// from the observed distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `width` is finite and positive.
    pub fn with_width(width: f64) -> Self {
        assert!(
            width.is_finite() && width > 0.0,
            "CalendarQueue day width must be finite and positive, got {width}"
        );
        CalendarQueue {
            buckets: std::iter::repeat_with(Vec::new).take(MIN_BUCKETS).collect(),
            width,
            len: 0,
            last: 0.0,
        }
    }

    /// A calendar sized for delays bounded by `max_delay`: the whole
    /// delay window fits in one year, so a pop rarely wraps.
    ///
    /// # Panics
    ///
    /// Panics unless `max_delay` is finite and positive.
    pub fn with_delay_bound(max_delay: f64) -> Self {
        assert!(
            max_delay.is_finite() && max_delay > 0.0,
            "CalendarQueue delay bound must be finite and positive, got {max_delay}"
        );
        Self::with_width(max_delay / MIN_BUCKETS as f64)
    }

    /// Absolute (un-wrapped) day index of `time`.
    ///
    /// Monotone in `time`, which is all correctness needs: the cast
    /// saturates for astronomically early/late times, affecting only
    /// bucket placement (performance), never pop order. `floor` (not the
    /// truncation a plain `as u64` cast performs) keeps the mapping
    /// monotone across zero — truncation would saturate every negative
    /// quotient to day 0, aliasing negative-time events with day-0 ones
    /// and letting the stored-day scan pop them out of order.
    #[inline]
    fn day_of(&self, time: f64) -> i64 {
        (time / self.width).floor() as i64
    }

    /// Bucket index of absolute day `day` in a year of `n` buckets.
    #[inline]
    fn bucket_of(day: i64, n: usize) -> usize {
        day.rem_euclid(n as i64) as usize
    }

    /// Re-buckets every entry into `new_buckets` buckets, re-deriving the
    /// width from the observed time span so one year covers roughly twice
    /// the pending window.
    fn resize(&mut self, new_buckets: usize) {
        let new_buckets = new_buckets.max(MIN_BUCKETS);
        let mut entries: Vec<Slot<T>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            entries.append(bucket);
        }
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for s in &entries {
            lo = lo.min(s.event.time);
            hi = hi.max(s.event.time);
        }
        let span = hi - lo;
        if span.is_finite() && span > 0.0 {
            // Two years per span keeps average occupancy <= 2 right after
            // a grow (grow triggers at len > 2 * buckets).
            let width = 2.0 * span / new_buckets as f64;
            if width.is_finite() && width > 0.0 {
                self.width = width;
            }
        }
        self.buckets.resize_with(new_buckets, Vec::new);
        let n = self.buckets.len();
        for mut slot in entries {
            slot.day = self.day_of(slot.event.time);
            self.buckets[Self::bucket_of(slot.day, n)].push(slot);
        }
    }

    /// Index-of-minimum within `bucket` among slots of exactly `day`.
    fn min_in_day(bucket: &[Slot<T>], day: i64) -> Option<usize> {
        bucket
            .iter()
            .enumerate()
            .filter(|(_, s)| s.day == day)
            .min_by(|(_, a), (_, b)| {
                a.event
                    .time
                    .total_cmp(&b.event.time)
                    .then(a.event.seq.cmp(&b.event.seq))
            })
            .map(|(i, _)| i)
    }
}

impl<T> QueueBackend<T> for CalendarQueue<T> {
    fn push(&mut self, time: f64, seq: u64, payload: T) {
        assert!(
            time.is_finite(),
            "queue backend time must be finite, got {time}"
        );
        // Before the first pop the contract allows arbitrarily early
        // (including negative) times; keep `last` a true lower bound so
        // the pop scan starts at or before the earliest pending day.
        self.last = self.last.min(time);
        let day = self.day_of(time);
        let n = self.buckets.len();
        self.buckets[Self::bucket_of(day, n)].push(Slot {
            day,
            event: Event { time, seq, payload },
        });
        self.len += 1;
        if self.len > 2 * n {
            self.resize(n * 2);
        }
    }

    fn pop_min(&mut self) -> Option<Event<T>> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len();
        // Scan one year forward from the day holding `last`. Days are
        // monotone in time, so the first populated day contains the
        // global minimum, and within a day `(time, seq)` decides.
        let first_day = self.day_of(self.last);
        for step in 0..n as i64 {
            let day = first_day.saturating_add(step);
            let idx = Self::bucket_of(day, n);
            if let Some(i) = Self::min_in_day(&self.buckets[idx], day) {
                let slot = self.buckets[idx].swap_remove(i);
                self.len -= 1;
                self.last = slot.event.time;
                if self.len < n / 2 && n > MIN_BUCKETS {
                    self.resize(n / 2);
                }
                return Some(slot.event);
            }
        }
        // Sparse far-future set: a whole year held no candidate. Find the
        // earliest populated day directly, then the minimum within it.
        let (idx, i) = self
            .buckets
            .iter()
            .enumerate()
            .flat_map(|(b, bucket)| bucket.iter().enumerate().map(move |(i, s)| (b, i, s)))
            .min_by(|(_, _, a), (_, _, b)| {
                a.event
                    .time
                    .total_cmp(&b.event.time)
                    .then(a.event.seq.cmp(&b.event.seq))
            })
            .map(|(b, i, _)| (b, i))
            .expect("len > 0 implies a pending entry");
        let slot = self.buckets[idx].swap_remove(i);
        self.len -= 1;
        self.last = slot.event.time;
        Some(slot.event)
    }

    fn peek_time(&self) -> Option<f64> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len();
        let first_day = self.day_of(self.last);
        for step in 0..n as i64 {
            let day = first_day.saturating_add(step);
            let idx = Self::bucket_of(day, n);
            if let Some(i) = Self::min_in_day(&self.buckets[idx], day) {
                return Some(self.buckets[idx][i].event.time);
            }
        }
        self.buckets
            .iter()
            .flatten()
            .map(|s| s.event.time)
            .min_by(f64::total_cmp)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.len = 0;
        self.last = 0.0;
    }

    fn reserve(&mut self, additional: usize) {
        let n = self.buckets.len();
        let per_bucket = additional.div_ceil(n);
        for bucket in &mut self.buckets {
            bucket.reserve(per_bucket);
        }
    }

    fn capacity(&self) -> usize {
        self.buckets.iter().map(Vec::capacity).sum()
    }

    fn name(&self) -> &'static str {
        "calendar"
    }

    fn visit_entries(&self, visit: &mut dyn FnMut(f64, u64, &T)) {
        for slot in self.buckets.iter().flatten() {
            visit(slot.event.time, slot.event.seq, &slot.event.payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T>(q: &mut CalendarQueue<T>) -> Vec<(f64, u64)> {
        std::iter::from_fn(|| q.pop_min().map(|e| (e.time, e.seq))).collect()
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(3.0, 1, 'a');
        q.push(1.0, 2, 'b');
        q.push(2.0, 3, 'c');
        q.push(1.0, 4, 'd');
        assert_eq!(drain(&mut q), [(1.0, 2), (1.0, 4), (2.0, 3), (3.0, 1)]);
    }

    #[test]
    fn handles_far_future_sparse_sets() {
        // A single event many years ahead exercises the direct-search
        // fallback after a fruitless year scan.
        let mut q = CalendarQueue::with_width(0.001);
        q.push(1e9, 1, ());
        assert_eq!(q.peek_time(), Some(1e9));
        let ev = q.pop_min().unwrap();
        assert_eq!(ev.time, 1e9);
        assert!(q.pop_min().is_none());
    }

    #[test]
    fn boundary_times_cannot_disagree_with_bucketing() {
        // 3 * 0.3 rounds below 0.9 in f64; a window check computed as
        // `day * width` would disagree with `time / width` bucketing
        // here. The stored day index makes both sides identical.
        let mut q = CalendarQueue::with_width(0.3);
        let t = 3.0f64 * 0.3; // 0.8999999999999999
        q.push(t, 1, "boundary");
        q.push(1.0, 2, "later");
        assert_eq!(q.pop_min().unwrap().payload, "boundary");
        assert_eq!(q.pop_min().unwrap().payload, "later");
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut q = CalendarQueue::new();
        let mut seq = 0u64;
        let mut popped = Vec::new();
        // Bounded-delay "hold" pattern: pop one, push one slightly ahead.
        for round in 0..64u64 {
            seq += 1;
            q.push(round as f64 * 0.37, seq, ());
        }
        while let Some(ev) = q.pop_min() {
            popped.push(ev.time);
            if popped.len() < 200 {
                seq += 1;
                q.push(ev.time + 2.5 + (seq % 7) as f64 * 0.31, seq, ());
            }
        }
        let mut sorted = popped.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(popped, sorted);
        assert_eq!(popped.len(), 200 + 63);
    }

    #[test]
    fn grows_and_shrinks_through_resizes() {
        let mut q = CalendarQueue::with_width(0.5);
        for i in 0..1000u64 {
            q.push(i as f64 * 0.13, i, ());
        }
        assert!(q.buckets.len() > MIN_BUCKETS, "{}", q.buckets.len());
        let order = drain(&mut q);
        assert_eq!(order.len(), 1000);
        assert!(order.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(q.buckets.len(), MIN_BUCKETS);
    }

    #[test]
    fn equal_times_all_in_one_bucket_break_by_seq() {
        let mut q = CalendarQueue::new();
        for seq in (1..=50u64).rev() {
            q.push(4.25, seq, seq);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop_min().map(|e| e.payload)).collect();
        assert_eq!(order, (1..=50).collect::<Vec<_>>());
    }

    #[test]
    fn clear_keeps_bucket_allocations() {
        let mut q = CalendarQueue::new();
        QueueBackend::<u32>::reserve(&mut q, 256);
        let cap = QueueBackend::<u32>::capacity(&q);
        assert!(cap >= 256);
        for i in 0..32u64 {
            q.push(i as f64, i, i as u32);
        }
        QueueBackend::<u32>::clear(&mut q);
        assert_eq!(QueueBackend::<u32>::len(&q), 0);
        assert!(QueueBackend::<u32>::capacity(&q) >= cap);
        // The clock reset: old times are schedulable again.
        q.push(0.5, 1, 9);
        assert_eq!(q.pop_min().unwrap().payload, 9);
    }

    #[test]
    fn zero_time_events() {
        let mut q = CalendarQueue::new();
        q.push(0.0, 1, 'x');
        q.push(0.0, 2, 'y');
        let a = q.pop_min().unwrap();
        let b = q.pop_min().unwrap();
        assert_eq!((a.payload, b.payload), ('x', 'y'));
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_nonpositive_width() {
        let _ = CalendarQueue::<()>::with_width(0.0);
    }

    #[test]
    fn negative_times_do_not_alias_with_day_zero() {
        // Truncating `(time / width) as u64` used to map every negative
        // quotient to day 0: an event at -3.7 landed in the same day as
        // one at 0.2 and could pop after it. Floor-based signed days keep
        // the mapping monotone through zero.
        let mut q = CalendarQueue::new();
        q.push(0.2, 1, "late");
        q.push(-3.7, 2, "early");
        q.push(-0.5, 3, "mid");
        q.push(-3.7, 4, "early-tie");
        assert_eq!(q.peek_time(), Some(-3.7));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop_min().map(|e| e.payload)).collect();
        assert_eq!(order, ["early", "early-tie", "mid", "late"]);
    }

    #[test]
    fn negative_times_survive_resizes() {
        let mut q = CalendarQueue::with_width(0.5);
        for i in 0..500u64 {
            q.push(i as f64 * 0.13 - 40.0, i, ());
        }
        let order = drain(&mut q);
        assert_eq!(order.len(), 500);
        assert!(order.windows(2).all(|w| w[0] <= w[1]), "{order:?}");
    }

    #[test]
    fn interleaved_negative_schedule_stays_sorted() {
        // Pops interleaved with pushes at/above the last popped (still
        // negative) time — the monotonicity contract in the negative
        // range.
        let mut q = CalendarQueue::new();
        for i in 0..16u64 {
            q.push(-20.0 + i as f64 * 1.25, i, ());
        }
        let mut popped = Vec::new();
        let mut seq = 16u64;
        while let Some(ev) = q.pop_min() {
            popped.push(ev.time);
            if seq < 48 {
                q.push(ev.time + 0.75, seq, ());
                seq += 1;
            }
        }
        let mut sorted = popped.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(popped, sorted);
        assert_eq!(popped.len(), 48);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn push_rejects_infinite_time() {
        CalendarQueue::new().push(f64::INFINITY, 1, ());
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn push_rejects_nan_time() {
        CalendarQueue::new().push(f64::NAN, 1, ());
    }
}
