//! Trace recording and VCD waveform dumping.
//!
//! A [`TraceRecorder`] is a passive sink: a simulator declares the
//! signals it drives, then records `(time, signal, value)` transitions
//! as they happen (or replays them afterwards). The recorder keeps the
//! full transition stream for programmatic inspection and serialises it
//! as a Value Change Dump, the lingua franca of waveform viewers —
//! the same capture-then-`dump_vcd` design rhdl's traced simulations
//! use.
//!
//! Times are arbitrary `f64` units (the workspace convention is
//! nanoseconds); the VCD writer emits a `1ps` timescale and scales by
//! 1000, so fractional delays down to a thousandth of a unit survive the
//! integer conversion losslessly.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Handle of a declared trace signal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceId(pub u32);

impl TraceId {
    /// The signal's index in declaration order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One recorded transition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Change {
    /// Simulation time of the transition.
    pub time: f64,
    /// The signal that changed.
    pub signal: TraceId,
    /// The value after the transition.
    pub value: bool,
}

/// Records timed boolean signal transitions and writes VCD.
///
/// # Examples
///
/// ```
/// use tsg_sim::TraceRecorder;
///
/// let mut rec = TraceRecorder::new("demo");
/// let clk = rec.declare("clk");
/// rec.record(0.0, clk, false);
/// rec.record(1.0, clk, true);
/// rec.record(2.0, clk, false);
/// let vcd = rec.to_vcd_string();
/// assert!(vcd.contains("$timescale 1ps $end"));
/// assert!(vcd.contains("$var wire 1"));
/// assert!(vcd.contains("#1000"));
/// ```
#[derive(Clone, Debug)]
pub struct TraceRecorder {
    module: String,
    names: Vec<String>,
    changes: Vec<Change>,
}

/// Rounded 1 ps timestamp of a recorded time (times are in the
/// workspace's arbitrary units, written at 1000 stamps per unit).
fn stamp_of(time: f64) -> u64 {
    (time * 1000.0).round() as u64
}

/// VCD identifier code for the `i`-th signal: base-94 over the printable
/// ASCII range `!`..=`~`, the encoding every VCD producer uses.
fn id_code(mut i: usize) -> String {
    let mut code = String::new();
    loop {
        code.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
        i -= 1;
    }
    code
}

impl TraceRecorder {
    /// An empty recorder; `module` names the VCD scope.
    pub fn new(module: impl Into<String>) -> Self {
        TraceRecorder {
            module: module.into(),
            names: Vec::new(),
            changes: Vec::new(),
        }
    }

    /// Declares a signal, returning its handle.
    pub fn declare(&mut self, name: impl Into<String>) -> TraceId {
        let id = TraceId(self.names.len() as u32);
        self.names.push(name.into());
        id
    }

    /// Number of declared signals.
    pub fn signal_count(&self) -> usize {
        self.names.len()
    }

    /// The name a signal was declared with.
    pub fn name(&self, id: TraceId) -> &str {
        &self.names[id.index()]
    }

    /// Records a transition of `signal` to `value` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN/infinite/negative or `signal` was never
    /// declared — the same reject-at-entry contract as the event queue.
    pub fn record(&mut self, time: f64, signal: TraceId, value: bool) {
        assert!(
            time.is_finite() && time >= 0.0,
            "trace time must be finite and non-negative, got {time}"
        );
        assert!(
            signal.index() < self.names.len(),
            "trace signal {signal:?} was never declared"
        );
        self.changes.push(Change {
            time,
            signal,
            value,
        });
    }

    /// The recorded transitions, in recording order.
    pub fn changes(&self) -> &[Change] {
        &self.changes
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Writes the trace as VCD.
    ///
    /// Transitions are sorted by `(time, recording order)`; the last
    /// write at a given instant wins, matching event-queue semantics.
    /// Output is grouped by *rounded* 1 ps stamp, not raw time: distinct
    /// times that collide on the same stamp share one `#N` section, and
    /// changes whose stamp rounds to 0 fold into `$dumpvars` — so the
    /// dump is canonical (no duplicate time sections) for viewers and
    /// diff-based tests alike.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_vcd<W: Write>(&self, mut w: W) -> io::Result<()> {
        let codes: Vec<String> = (0..self.names.len()).map(id_code).collect();
        writeln!(w, "$date offline $end")?;
        writeln!(w, "$version tsg-sim TraceRecorder $end")?;
        writeln!(w, "$timescale 1ps $end")?;
        writeln!(w, "$scope module {} $end", self.module)?;
        for (name, code) in self.names.iter().zip(&codes) {
            // VCD identifiers must not contain whitespace; signal *names*
            // with spaces are the caller's own naming choice to avoid.
            writeln!(w, "$var wire 1 {code} {name} $end")?;
        }
        writeln!(w, "$upscope $end")?;
        writeln!(w, "$enddefinitions $end")?;

        let mut ordered: Vec<(usize, &Change)> = self.changes.iter().enumerate().collect();
        ordered.sort_by(|(ia, a), (ib, b)| a.time.total_cmp(&b.time).then(ia.cmp(ib)));

        // Initial values: every change whose *stamp* rounds to 0 belongs
        // in $dumpvars — including sub-half-picosecond times like 4e-4,
        // which would otherwise open a `#0` section duplicating the
        // time-zero state. A signal whose first change stamps later
        // starts as `x` and keeps its timestamped edge. (Stamps are
        // monotone in time, so the stamp-0 changes are exactly a prefix
        // of the sorted order.)
        writeln!(w, "$dumpvars")?;
        let mut initial: Vec<Option<bool>> = vec![None; self.names.len()];
        for (_, c) in &ordered {
            if stamp_of(c.time) > 0 {
                break;
            }
            initial[c.signal.index()] = Some(c.value);
        }
        for (init, code) in initial.iter().zip(&codes) {
            match init {
                Some(v) => writeln!(w, "{}{code}", u8::from(*v))?,
                None => writeln!(w, "x{code}")?,
            }
        }
        writeln!(w, "$end")?;

        // Body: one `#N` section per distinct stamp. Equal stamps are
        // contiguous (stamps are monotone in the sorted times), so a
        // single last-stamp check merges every collision.
        let mut last_stamp: Option<u64> = None;
        for (_, c) in &ordered {
            let stamp = stamp_of(c.time);
            if stamp == 0 {
                continue; // folded into $dumpvars
            }
            if last_stamp != Some(stamp) {
                writeln!(w, "#{stamp}")?;
                last_stamp = Some(stamp);
            }
            writeln!(w, "{}{}", u8::from(c.value), codes[c.signal.index()])?;
        }
        Ok(())
    }

    /// The VCD as a string (for tests and small traces).
    pub fn to_vcd_string(&self) -> String {
        let mut buf = Vec::new();
        self.write_vcd(&mut buf)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("VCD output is ASCII")
    }

    /// Writes the VCD to `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn dump_vcd(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let file = BufWriter::new(File::create(path)?);
        self.write_vcd(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            let code = id_code(i);
            assert!(code.bytes().all(|b| (33..127).contains(&b)), "{code:?}");
            assert!(seen.insert(code));
        }
    }

    #[test]
    fn vcd_structure() {
        let mut rec = TraceRecorder::new("osc");
        let a = rec.declare("a");
        let b = rec.declare("b");
        rec.record(0.0, a, false);
        rec.record(0.0, b, true);
        rec.record(2.5, a, true);
        rec.record(4.0, b, false);
        let vcd = rec.to_vcd_string();
        assert!(vcd.contains("$scope module osc $end"));
        assert!(vcd.contains("$var wire 1 ! a $end"));
        assert!(vcd.contains("$var wire 1 \" b $end"));
        // initial values folded into $dumpvars
        assert!(vcd.contains("$dumpvars\n0!\n1\"\n$end"));
        assert!(vcd.contains("#2500\n1!"));
        assert!(vcd.contains("#4000\n0\""));
    }

    #[test]
    fn undeclared_signal_is_x_at_start() {
        let mut rec = TraceRecorder::new("m");
        let a = rec.declare("a");
        let b = rec.declare("late");
        rec.record(0.0, a, true);
        rec.record(3.0, b, true);
        let vcd = rec.to_vcd_string();
        assert!(vcd.contains("x\""), "{vcd}");
    }

    #[test]
    fn out_of_order_records_are_sorted() {
        let mut rec = TraceRecorder::new("m");
        let a = rec.declare("a");
        rec.record(5.0, a, true);
        rec.record(1.0, a, false);
        let vcd = rec.to_vcd_string();
        let p0 = vcd.find("#1000\n0!").unwrap();
        let p1 = vcd.find("#5000\n1!").unwrap();
        assert!(p0 < p1, "{vcd}");
    }

    #[test]
    fn late_first_edge_keeps_its_timestamp() {
        // A trace starting after t = 0 must not fold its first edge into
        // $dumpvars: the signal starts `x` and the edge keeps its stamp.
        let mut rec = TraceRecorder::new("m");
        let a = rec.declare("a");
        rec.record(5.0, a, true);
        rec.record(7.0, a, false);
        let vcd = rec.to_vcd_string();
        assert!(vcd.contains("$dumpvars\nx!\n$end"), "{vcd}");
        assert!(vcd.contains("#5000\n1!"), "{vcd}");
        assert!(vcd.contains("#7000\n0!"), "{vcd}");
    }

    #[test]
    fn sub_half_picosecond_changes_fold_into_dumpvars() {
        // t = 4e-4 rounds to stamp 0: it is part of the time-zero state,
        // not a separate `#0` section duplicating $dumpvars.
        let mut rec = TraceRecorder::new("m");
        let a = rec.declare("a");
        rec.record(0.0004, a, true);
        rec.record(2.0, a, false);
        let vcd = rec.to_vcd_string();
        assert!(vcd.contains("$dumpvars\n1!\n$end"), "{vcd}");
        assert!(!vcd.contains("#0\n"), "{vcd}");
        assert!(vcd.contains("#2000\n0!"), "{vcd}");
    }

    #[test]
    fn colliding_rounded_stamps_share_one_section() {
        // 1.0001 and 1.0004 both round to stamp 1000: a single `#1000`
        // header carries both edges (last write wins in viewers).
        let mut rec = TraceRecorder::new("m");
        let a = rec.declare("a");
        let b = rec.declare("b");
        rec.record(1.0001, a, true);
        rec.record(1.0004, b, true);
        rec.record(3.0, a, false);
        let vcd = rec.to_vcd_string();
        assert_eq!(vcd.matches("#1000\n").count(), 1, "{vcd}");
        assert!(vcd.contains("#1000\n1!\n1\"\n"), "{vcd}");
    }

    #[test]
    fn stamp_zero_and_exact_zero_merge() {
        // An exact t = 0 record and a stamp-0 rounding both describe the
        // initial state; the later recording wins, as at any instant.
        let mut rec = TraceRecorder::new("m");
        let a = rec.declare("a");
        rec.record(0.0, a, false);
        rec.record(0.0002, a, true);
        let vcd = rec.to_vcd_string();
        assert!(vcd.contains("$dumpvars\n1!\n$end"), "{vcd}");
        assert!(!vcd.contains("#0\n"), "{vcd}");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_time_rejected() {
        let mut rec = TraceRecorder::new("m");
        let a = rec.declare("a");
        rec.record(f64::NAN, a, true);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_rejected() {
        let mut rec = TraceRecorder::new("m");
        let a = rec.declare("a");
        rec.record(-1.0, a, true);
    }

    #[test]
    #[should_panic(expected = "never declared")]
    fn undeclared_id_rejected() {
        let mut rec = TraceRecorder::new("m");
        rec.record(0.0, TraceId(3), true);
    }

    #[test]
    fn empty_trace_still_valid_vcd() {
        let rec = TraceRecorder::new("m");
        let vcd = rec.to_vcd_string();
        assert!(vcd.contains("$enddefinitions"));
    }
}
