//! Reachable-state exploration and semimodularity checking.
//!
//! Explores every interleaving of gate firings (and one-shot environment
//! flips) from the initial state. The circuit is *semimodular* when no
//! excited gate is ever disabled by the firing of a different gate —
//! Muller's classical sufficient condition for speed-independent operation
//! of autonomous circuits.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use tsg_circuit::{Netlist, SignalId};

/// A witnessed semimodularity violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SemimodularityViolation {
    /// The signal whose gate was excited before the step.
    pub disabled: SignalId,
    /// The signal whose transition removed the excitation.
    pub by: SignalId,
}

impl fmt::Display for SemimodularityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "excitation of {} disabled by {}", self.disabled, self.by)
    }
}

/// Result of [`explore`].
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Number of distinct reachable states (including environment-pending
    /// distinctions).
    pub states: usize,
    /// All distinct semimodularity violations found.
    pub violations: Vec<SemimodularityViolation>,
    /// `true` when the exploration hit the state limit before finishing.
    pub truncated: bool,
}

impl ExploreReport {
    /// `true` when no violation was found (and the search completed).
    pub fn is_semimodular(&self) -> bool {
        self.violations.is_empty() && !self.truncated
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct State {
    values: u64,
    env_pending: u64,
}

/// Explores all interleavings of `netlist` from its initial state, visiting
/// at most `max_states` states.
///
/// # Panics
///
/// Panics if the netlist has more than 64 signals (the packed-state limit;
/// the circuits of interest here are far smaller).
///
/// # Examples
///
/// ```
/// use tsg_circuit::library;
/// use tsg_extract::explore;
///
/// let nl = library::c_element_oscillator();
/// let report = explore(&nl, 100_000);
/// assert!(report.is_semimodular());
/// ```
pub fn explore(netlist: &Netlist, max_states: usize) -> ExploreReport {
    let n = netlist.signal_count();
    assert!(n <= 64, "explore packs states into u64 (<= 64 signals)");

    let initial = {
        let mut v = 0u64;
        for (i, &x) in netlist.initial_state().iter().enumerate() {
            if x {
                v |= (x as u64) << i;
            }
        }
        let mut env = 0u64;
        for &s in netlist.env_flips() {
            env |= 1 << s.index();
        }
        State {
            values: v,
            env_pending: env,
        }
    };

    let unpack = |s: State| -> Vec<bool> { (0..n).map(|i| s.values >> i & 1 == 1).collect() };

    // An "action" is either firing an excited gate or an environment flip.
    let actions = |s: State| -> Vec<SignalId> {
        let vals = unpack(s);
        let mut out: Vec<SignalId> = netlist
            .excited_gates(&vals)
            .into_iter()
            .map(|g| netlist.gates()[g].output)
            .collect();
        for &e in netlist.env_flips() {
            if s.env_pending >> e.index() & 1 == 1 {
                out.push(e);
            }
        }
        out
    };

    let apply = |s: State, sig: SignalId| -> State {
        State {
            values: s.values ^ (1 << sig.index()),
            env_pending: s.env_pending & !(1 << sig.index()),
        }
    };

    let mut seen: HashMap<State, ()> = HashMap::new();
    let mut queue = VecDeque::new();
    seen.insert(initial, ());
    queue.push_back(initial);
    let mut violations = Vec::new();
    let mut truncated = false;

    while let Some(s) = queue.pop_front() {
        let enabled = actions(s);
        for &a in &enabled {
            let s2 = apply(s, a);
            // Semimodularity: everything enabled in s (other than a itself)
            // must stay enabled in s2. Environment flips cannot be disabled
            // (their pending bit only clears by firing).
            let enabled2 = actions(s2);
            for &b in &enabled {
                if b != a && !enabled2.contains(&b) {
                    let v = SemimodularityViolation { disabled: b, by: a };
                    if !violations.contains(&v) {
                        violations.push(v);
                    }
                }
            }
            if !seen.contains_key(&s2) {
                if seen.len() >= max_states {
                    truncated = true;
                    continue;
                }
                seen.insert(s2, ());
                queue.push_back(s2);
            }
        }
    }

    ExploreReport {
        states: seen.len(),
        violations,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_circuit::{library, GateKind, Netlist};

    #[test]
    fn oscillator_is_semimodular() {
        let report = explore(&library::c_element_oscillator(), 100_000);
        assert!(report.is_semimodular());
        assert!(report.states > 4);
    }

    #[test]
    fn muller_ring_is_semimodular() {
        for n in [3usize, 5, 8] {
            let report = explore(&library::muller_ring(n, 1.0), 1_000_000);
            assert!(report.is_semimodular(), "n={n}");
        }
    }

    #[test]
    fn inverter_ring_is_semimodular() {
        let report = explore(&library::inverter_ring(5, 1.0), 100_000);
        assert!(report.is_semimodular());
    }

    #[test]
    fn hazardous_circuit_is_flagged() {
        // y = AND(x, z) with z = INV(x): when x rises, y's excitation races
        // with z's fall — firing z disables y (classic static hazard).
        let mut b = Netlist::builder();
        b.input_with_flip("x", false);
        b.gate("z", GateKind::Inverter, &[("x", 1.0)], true)
            .unwrap();
        b.gate("y", GateKind::And, &[("x", 1.0), ("z", 1.0)], false)
            .unwrap();
        let nl = b.build().unwrap();
        let report = explore(&nl, 100_000);
        assert!(!report.is_semimodular());
        let y = nl.signal("y").unwrap();
        let z = nl.signal("z").unwrap();
        assert!(report
            .violations
            .iter()
            .any(|v| v.disabled == y && v.by == z));
    }

    #[test]
    fn state_limit_truncates() {
        let report = explore(&library::muller_ring(8, 1.0), 4);
        assert!(report.truncated);
        assert!(!report.is_semimodular());
    }

    #[test]
    fn quiescent_circuit_has_one_state() {
        let mut b = Netlist::builder();
        b.input("x", true);
        b.gate("y", GateKind::Buffer, &[("x", 1.0)], true).unwrap();
        let nl = b.build().unwrap();
        let report = explore(&nl, 100);
        assert_eq!(report.states, 1);
        assert!(report.is_semimodular());
    }
}
