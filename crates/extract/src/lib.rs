//! # tsg-extract — Signal Graph extraction from speed-independent circuits
//!
//! The TRASPEC step of the paper's flow (Section VIII.B, ref. \[9\]): given
//! a gate-level netlist and an initial state, verify that the circuit's
//! behaviour is well-behaved and derive the Timed Signal Graph that
//! specifies it, ready for cycle-time analysis.
//!
//! Two complementary analyses:
//!
//! * [`explore()`](explore::explore) — exhaustive reachable-state exploration under all
//!   interleavings, checking **semimodularity** (an excited gate is never
//!   disabled by another gate's transition — the speed-independence
//!   criterion for autonomous circuits);
//! * [`extract()`](extract::extract) — the canonical **trigger-tracking simulation** that
//!   builds the Signal Graph: each transition records the input pins whose
//!   values are *critical* to its excitation (AND-causality). An excitation
//!   with an empty critical set is OR-caused, which violates distributivity
//!   and is reported as an error, mirroring TRASPEC's contract of producing
//!   the graph only for distributive circuits.
//!
//! The extracted graph reproduces the paper's hand-drawn figures: Figure 1's
//! oscillator yields exactly the Figure 2c graph, and the Section VIII.D
//! Muller ring yields the Figure 5 graph with τ = 20/3.

pub mod explore;
pub mod extract;

pub use explore::{explore, ExploreReport, SemimodularityViolation};
pub use extract::{extract, ExtractError, ExtractOptions};
