//! Trigger-tracking Signal Graph extraction.
//!
//! The extraction runs a round-synchronous simulation of the netlist (all
//! excited gates fire together — a valid execution of any semimodular
//! circuit). When a gate becomes excited, the *critical* input signals are
//! recorded: those whose current value is individually necessary for the
//! excitation. AND-causality means every contributing pin is critical; an
//! excitation with an **empty** critical set is OR-caused and violates
//! distributivity, so it is rejected — the same contract as TRASPEC
//! (Section VIII.B).
//!
//! Each transition instance then knows its trigger instances, and the
//! periodic pattern folds directly into a Timed Signal Graph:
//!
//! * trigger in the same period → plain arc,
//! * trigger in the previous period → initially **marked** arc,
//! * support by an initial value (no transition yet) → marked arc from the
//!   event that re-establishes that value each period,
//! * trigger from a signal that stops transitioning → **disengageable**
//!   arc from the corresponding prefix event,
//!
//! with every arc carrying the pin's propagation delay.

use std::collections::HashMap;
use std::fmt;

use tsg_circuit::{Netlist, SignalId};
use tsg_core::{SignalGraph, ValidationError};

/// Options for [`extract`].
#[derive(Clone, Copy, Debug)]
pub struct ExtractOptions {
    /// Simulation rounds; 0 selects `8 * (signals + 2)` automatically.
    pub max_rounds: usize,
    /// Minimum instances per repetitive event required to trust the fold
    /// (>= 3).
    pub min_instances: usize,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions {
            max_rounds: 0,
            min_instances: 4,
        }
    }
}

/// Extraction failures.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ExtractError {
    /// An excitation had no individually critical pin: OR-causality, the
    /// behaviour is not distributive and has no Signal Graph.
    OrCausality {
        /// The output signal of the offending gate.
        signal: String,
    },
    /// The trigger pattern did not stabilise into a periodic shape.
    NotPeriodic {
        /// The signal whose pattern kept changing.
        signal: String,
    },
    /// A trigger reached back more than one period: the behaviour is not
    /// initially-safe as a Signal Graph.
    NotSafe {
        /// The signal with the long-range dependency.
        signal: String,
    },
    /// A finite (prefix) transition was triggered by a repetitive one —
    /// the well-formedness restriction of Section III.A.
    NotWellFormed {
        /// The prefix signal.
        signal: String,
    },
    /// A repetitive signal produced too few instances within the round
    /// budget.
    InsufficientActivity {
        /// The slow signal.
        signal: String,
    },
    /// The folded graph failed Signal Graph validation (indicates a bug or
    /// an exotic circuit outside the supported class).
    Structural(ValidationError),
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::OrCausality { signal } => {
                write!(
                    f,
                    "OR-caused excitation of {signal:?}: circuit is not distributive"
                )
            }
            ExtractError::NotPeriodic { signal } => {
                write!(f, "trigger pattern of {signal:?} is not periodic")
            }
            ExtractError::NotSafe { signal } => {
                write!(f, "dependency of {signal:?} spans more than one period")
            }
            ExtractError::NotWellFormed { signal } => {
                write!(f, "finite signal {signal:?} is caused by a repetitive one")
            }
            ExtractError::InsufficientActivity { signal } => {
                write!(f, "signal {signal:?} transitioned too few times to fold")
            }
            ExtractError::Structural(e) => write!(f, "folded graph invalid: {e}"),
        }
    }
}

impl std::error::Error for ExtractError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExtractError::Structural(e) => Some(e),
            _ => None,
        }
    }
}

#[derive(Clone, Debug)]
struct Trigger {
    pin_signal: SignalId,
    delay: f64,
    /// Record index of the causing transition; `None` = initial value.
    source: Option<usize>,
}

#[derive(Clone, Debug)]
struct Rec {
    signal: SignalId,
    value: bool,
    triggers: Vec<Trigger>,
}

/// Extracts the Timed Signal Graph of `netlist` (see module docs).
///
/// # Errors
///
/// Returns an [`ExtractError`] when the behaviour is not distributive, not
/// periodic, not initially-safe or not well-formed. Semimodularity is *not*
/// checked here (the canonical run cannot observe disabling); use
/// [`explore`](crate::explore::explore) for that guarantee first.
///
/// # Examples
///
/// ```
/// use tsg_circuit::library;
/// use tsg_core::analysis::CycleTimeAnalysis;
/// use tsg_extract::{extract, ExtractOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sg = extract(&library::c_element_oscillator(), ExtractOptions::default())?;
/// assert_eq!(sg.event_count(), 8);
/// assert_eq!(sg.arc_count(), 11);
/// assert_eq!(CycleTimeAnalysis::run(&sg)?.cycle_time().as_f64(), 10.0);
/// # Ok(())
/// # }
/// ```
pub fn extract(netlist: &Netlist, options: ExtractOptions) -> Result<SignalGraph, ExtractError> {
    let nsig = netlist.signal_count();
    let max_rounds = if options.max_rounds == 0 {
        8 * (nsig + 2)
    } else {
        options.max_rounds
    };
    let min_instances = options.min_instances.max(3);

    let mut state: Vec<bool> = netlist.initial_state().to_vec();
    let mut last_tr: Vec<Option<usize>> = vec![None; nsig];
    let mut recs: Vec<Rec> = Vec::new();
    let mut last_fire_round: Vec<Option<usize>> = vec![None; nsig];

    // Critical signals of an excited gate: inputs whose individual flip
    // removes the excitation.
    let critical = |gate: &tsg_circuit::Gate, state: &[bool]| -> Vec<SignalId> {
        let current = state[gate.output.index()];
        let mut out: Vec<SignalId> = Vec::new();
        let mut seen: Vec<SignalId> = Vec::new();
        for &pin in &gate.inputs {
            if seen.contains(&pin) {
                continue;
            }
            seen.push(pin);
            let mut probe: Vec<bool> = gate.inputs.iter().map(|s| state[s.index()]).collect();
            for (i, &s) in gate.inputs.iter().enumerate() {
                if s == pin {
                    probe[i] = !probe[i];
                }
            }
            if gate.kind.eval(&probe, current) == current {
                out.push(pin);
            }
        }
        out
    };

    let excitation = |gate: &tsg_circuit::Gate,
                      state: &[bool],
                      last_tr: &[Option<usize>]|
     -> Result<Option<Vec<Trigger>>, ExtractError> {
        let ins: Vec<bool> = gate.inputs.iter().map(|s| state[s.index()]).collect();
        let current = state[gate.output.index()];
        if gate.kind.eval(&ins, current) == current {
            return Ok(None);
        }
        let crit = critical(gate, state);
        if crit.is_empty() {
            return Err(ExtractError::OrCausality {
                signal: netlist.name(gate.output).to_owned(),
            });
        }
        let mut triggers = Vec::new();
        for (i, &pin) in gate.inputs.iter().enumerate() {
            if crit.contains(&pin) {
                triggers.push(Trigger {
                    pin_signal: pin,
                    delay: gate.pin_delays[i],
                    source: last_tr[pin.index()],
                });
            }
        }
        Ok(Some(triggers))
    };

    // exc[g]: triggers captured when gate g became excited.
    let mut exc: Vec<Option<Vec<Trigger>>> = Vec::with_capacity(netlist.gate_count());
    for g in netlist.gates() {
        exc.push(excitation(g, &state, &last_tr)?);
    }

    for round in 0..max_rounds {
        let mut fires: Vec<(SignalId, Vec<Trigger>)> = Vec::new();
        if round == 0 {
            for &e in netlist.env_flips() {
                fires.push((e, Vec::new()));
            }
        }
        for (slot, gate) in exc.iter_mut().zip(netlist.gates()) {
            if let Some(trigs) = slot.take() {
                fires.push((gate.output, trigs));
            }
        }
        if fires.is_empty() {
            break; // quiescent circuit
        }
        for (sig, triggers) in fires {
            state[sig.index()] = !state[sig.index()];
            let idx = recs.len();
            recs.push(Rec {
                signal: sig,
                value: state[sig.index()],
                triggers,
            });
            last_tr[sig.index()] = Some(idx);
            last_fire_round[sig.index()] = Some(round);
        }
        for (g, gate) in netlist.gates().iter().enumerate() {
            exc[g] = excitation(gate, &state, &last_tr)?;
        }
    }

    fold(
        netlist,
        &recs,
        &last_fire_round,
        max_rounds,
        nsig,
        min_instances,
    )
}

/// Folds the recorded unfolding into a Signal Graph.
fn fold(
    netlist: &Netlist,
    recs: &[Rec],
    last_fire_round: &[Option<usize>],
    max_rounds: usize,
    nsig: usize,
    min_instances: usize,
) -> Result<SignalGraph, ExtractError> {
    // Classify signals: repetitive = still firing near the end.
    let window = nsig + 2;
    let repetitive: Vec<bool> = (0..nsig)
        .map(|s| last_fire_round[s].is_some_and(|r| r + window >= max_rounds))
        .collect();

    // Per-record instance numbers (per signal+value).
    let mut inst_no = vec![0u32; recs.len()];
    let mut counters: HashMap<(SignalId, bool), u32> = HashMap::new();
    for (i, r) in recs.iter().enumerate() {
        let c = counters.entry((r.signal, r.value)).or_insert(0);
        inst_no[i] = *c;
        *c += 1;
    }
    // Instances per (signal, value): record indices in order.
    let mut instances: HashMap<(SignalId, bool), Vec<usize>> = HashMap::new();
    for (i, r) in recs.iter().enumerate() {
        instances.entry((r.signal, r.value)).or_default().push(i);
    }

    let pol = |v: bool| if v { "+" } else { "-" };
    let mut b = SignalGraph::builder();
    let mut event_ids: HashMap<(SignalId, bool), tsg_core::EventId> = HashMap::new();
    let mut prefix_ids: HashMap<usize, tsg_core::EventId> = HashMap::new();

    // Prefix events first (their record order is causal order).
    for (i, r) in recs.iter().enumerate() {
        if repetitive[r.signal.index()] {
            continue;
        }
        let base = format!("{}{}", netlist.name(r.signal), pol(r.value));
        let label = if inst_no[i] == 0 {
            base
        } else {
            format!("{}_{}{}", netlist.name(r.signal), inst_no[i], pol(r.value))
        };
        let id = if r.triggers.is_empty() {
            b.initial_event(&label)
        } else {
            b.finite_event(&label)
        };
        prefix_ids.insert(i, id);
    }
    // Repetitive events.
    for s in netlist.signals() {
        if !repetitive[s.index()] {
            continue;
        }
        for v in [true, false] {
            let n_inst = instances.get(&(s, v)).map_or(0, Vec::len);
            if n_inst == 0 {
                continue; // a repetitive signal always alternates, so both exist
            }
            if n_inst < min_instances {
                return Err(ExtractError::InsufficientActivity {
                    signal: netlist.name(s).to_owned(),
                });
            }
            let label = format!("{}{}", netlist.name(s), pol(v));
            event_ids.insert((s, v), b.event(&label));
        }
    }

    // Arcs for prefix records.
    for (i, r) in recs.iter().enumerate() {
        if repetitive[r.signal.index()] {
            continue;
        }
        let dst = prefix_ids[&i];
        for t in &r.triggers {
            match t.source {
                None => {} // permanent initial support: no constraint
                Some(j) => {
                    if repetitive[recs[j].signal.index()] {
                        return Err(ExtractError::NotWellFormed {
                            signal: netlist.name(r.signal).to_owned(),
                        });
                    }
                    b.arc(prefix_ids[&j], dst, t.delay);
                }
            }
        }
    }

    // Arcs for repetitive events, from the steady pattern of the last
    // instance (verified equal to the one before it).
    for (&(s, v), &dst) in &event_ids {
        let insts = &instances[&(s, v)];
        let steady = steady_pattern(netlist, recs, &inst_no, &repetitive, insts, s)?;
        let prev = steady_pattern(
            netlist,
            recs,
            &inst_no,
            &repetitive,
            &insts[..insts.len() - 1],
            s,
        )?;
        if steady != prev {
            return Err(ExtractError::NotPeriodic {
                signal: netlist.name(s).to_owned(),
            });
        }
        for item in &steady {
            let src = event_ids[&(item.src_signal, item.src_value)];
            if item.offset == 1 {
                b.marked_arc(src, dst, item.delay);
            } else {
                b.arc(src, dst, item.delay);
            }
        }
        // Instance 0: disengageable arcs from prefix triggers and
        // consistency of initial supports with the steady marked arcs.
        let first = &recs[insts[0]];
        for t in &first.triggers {
            match t.source {
                Some(j) if !repetitive[recs[j].signal.index()] => {
                    b.disengageable_arc(prefix_ids[&j], dst, t.delay);
                }
                Some(j) => {
                    // must match a steady same-period or cross-period arc
                    let r = &recs[j];
                    let matches = steady
                        .iter()
                        .any(|it| it.src_signal == r.signal && it.src_value == r.value);
                    if !matches {
                        return Err(ExtractError::NotPeriodic {
                            signal: netlist.name(s).to_owned(),
                        });
                    }
                }
                None => {
                    // initial support: the steady pattern must carry the
                    // corresponding marked arc
                    let val = netlist.initial_state()[t.pin_signal.index()];
                    if repetitive[t.pin_signal.index()] {
                        let matches = steady.iter().any(|it| {
                            it.src_signal == t.pin_signal && it.src_value == val && it.offset == 1
                        });
                        if !matches {
                            return Err(ExtractError::NotPeriodic {
                                signal: netlist.name(s).to_owned(),
                            });
                        }
                    }
                }
            }
        }
    }

    b.build().map_err(ExtractError::Structural)
}

#[derive(Clone, Debug, PartialEq, PartialOrd)]
struct PatternItem {
    src_signal: SignalId,
    src_value: bool,
    offset: u32,
    delay: f64,
}

/// The steady trigger pattern of the last instance in `insts`: arcs from
/// repetitive sources with their period offsets; prefix-source and
/// permanent-initial supports are static and excluded.
fn steady_pattern(
    netlist: &Netlist,
    recs: &[Rec],
    inst_no: &[u32],
    repetitive: &[bool],
    insts: &[usize],
    signal: SignalId,
) -> Result<Vec<PatternItem>, ExtractError> {
    let last = *insts.last().expect("instance list is non-empty");
    let own_inst = inst_no[last];
    debug_assert!(own_inst >= 1, "steady pattern needs instance >= 1");
    let mut items = Vec::new();
    for t in &recs[last].triggers {
        match t.source {
            None => {
                if repetitive[t.pin_signal.index()] {
                    // a repetitive support still at its initial value after
                    // a full period: more than one token on the arc
                    return Err(ExtractError::NotSafe {
                        signal: netlist.name(signal).to_owned(),
                    });
                }
                // constant prefix signal: permanent support, no arc
            }
            Some(j) => {
                let src = &recs[j];
                if !repetitive[src.signal.index()] {
                    continue; // static prefix support: handled at instance 0
                }
                let offset = own_inst - inst_no[j];
                if offset > 1 {
                    return Err(ExtractError::NotSafe {
                        signal: netlist.name(signal).to_owned(),
                    });
                }
                items.push(PatternItem {
                    src_signal: src.signal,
                    src_value: src.value,
                    offset,
                    delay: t.delay,
                });
            }
        }
    }
    items.sort_by(|a, b| {
        (a.src_signal, a.src_value, a.offset)
            .cmp(&(b.src_signal, b.src_value, b.offset))
            .then(a.delay.total_cmp(&b.delay))
    });
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsg_circuit::library;
    use tsg_core::analysis::CycleTimeAnalysis;

    #[test]
    fn figure1_extraction_matches_figure2c() {
        let sg = extract(&library::c_element_oscillator(), ExtractOptions::default()).unwrap();
        assert_eq!(sg.event_count(), 8);
        assert_eq!(sg.arc_count(), 11);
        // border events are a+ and b+ (Example 7)
        let mut borders: Vec<String> = sg
            .border_events()
            .iter()
            .map(|&e| sg.label(e).to_string())
            .collect();
        borders.sort();
        assert_eq!(borders, vec!["a+", "b+"]);
        // exact arc inventory
        let mut arcs: Vec<String> = sg
            .arc_ids()
            .map(|a| {
                let arc = sg.arc(a);
                format!(
                    "{}->{}:{}{}{}",
                    sg.label(arc.src()),
                    sg.label(arc.dst()),
                    arc.delay(),
                    if arc.is_marked() { "*" } else { "" },
                    if arc.is_disengageable() { "x" } else { "" },
                )
            })
            .collect();
        arcs.sort();
        assert_eq!(
            arcs,
            vec![
                "a+->c+:3",
                "a-->c-:3",
                "b+->c+:2",
                "b-->c-:2",
                "c+->a-:2",
                "c+->b-:1",
                "c-->a+:2*",
                "c-->b+:1*",
                "e-->a+:2x",
                "e-->f-:3",
                "f-->b+:1x",
            ]
        );
    }

    #[test]
    fn figure1_extraction_cycle_time_is_10() {
        let sg = extract(&library::c_element_oscillator(), ExtractOptions::default()).unwrap();
        let a = CycleTimeAnalysis::run(&sg).unwrap();
        assert_eq!(a.cycle_time().as_f64(), 10.0);
    }

    #[test]
    fn muller_ring5_extraction_matches_section8d() {
        let sg = extract(&library::muller_ring(5, 1.0), ExtractOptions::default()).unwrap();
        // 10 signals, all repetitive: 20 events.
        assert_eq!(sg.event_count(), 20);
        // Four border events, as the paper states: s0+, s1+, s2+, s4-
        // (named a+, b+, c+, e- in the paper's lettering).
        let mut borders: Vec<String> = sg
            .border_events()
            .iter()
            .map(|&e| sg.label(e).to_string())
            .collect();
        borders.sort();
        assert_eq!(borders, vec!["s0+", "s1+", "s2+", "s4-"]);
        // τ = 20/3.
        let a = CycleTimeAnalysis::run(&sg).unwrap();
        assert_eq!(a.cycle_time().exact().unwrap(), tsg_core::Ratio::new(20, 3));
    }

    #[test]
    fn muller_ring5_initiated_times_match_the_paper_table() {
        use tsg_core::analysis::initiated::InitiatedSimulation;
        let sg = extract(&library::muller_ring(5, 1.0), ExtractOptions::default()).unwrap();
        let s0p = sg.event_by_label("s0+").unwrap();
        let sim = InitiatedSimulation::run(&sg, s0p, 10).unwrap();
        let want = [6.0, 13.0, 20.0, 26.0, 33.0, 40.0, 46.0, 53.0, 60.0, 66.0];
        for (i, &w) in want.iter().enumerate() {
            assert_eq!(
                sim.time(s0p, i as u32 + 1),
                Some(w),
                "t_{{a+0}}(a+_{})",
                i + 1
            );
        }
    }

    #[test]
    fn inverter_ring_extracts() {
        let sg = extract(&library::inverter_ring(5, 1.0), ExtractOptions::default()).unwrap();
        assert_eq!(sg.event_count(), 10);
        let a = CycleTimeAnalysis::run(&sg).unwrap();
        assert_eq!(a.cycle_time().as_f64(), 10.0); // period 2n
    }

    #[test]
    fn or_causal_circuit_is_rejected() {
        use tsg_circuit::{GateKind, Netlist};
        // y = NAND(x1, x2) falling with both inputs rising concurrently is
        // AND-causal, but an OR gate fed by two concurrently-rising inputs
        // is OR-causal on the rise.
        let mut b = Netlist::builder();
        b.input_with_flip("x1", false);
        b.input_with_flip("x2", false);
        b.gate("y", GateKind::Or, &[("x1", 1.0), ("x2", 1.0)], false)
            .unwrap();
        // close the loop so y also falls (not needed: finite is fine)
        let nl = b.build().unwrap();
        let err = extract(&nl, ExtractOptions::default()).unwrap_err();
        assert!(matches!(err, ExtractError::OrCausality { .. }));
    }

    #[test]
    fn quiescent_circuit_extracts_prefix_only() {
        use tsg_circuit::{GateKind, Netlist};
        let mut b = Netlist::builder();
        b.input_with_flip("x", true);
        b.gate("y", GateKind::Buffer, &[("x", 2.0)], true).unwrap();
        b.gate("z", GateKind::Inverter, &[("y", 1.0)], false)
            .unwrap();
        let nl = b.build().unwrap();
        let sg = extract(&nl, ExtractOptions::default()).unwrap();
        // x-, y-, z+ : all prefix, no repetitive events.
        assert_eq!(sg.event_count(), 3);
        assert_eq!(sg.repetitive_count(), 0);
    }

    #[test]
    fn extraction_agrees_with_hand_built_tsg() {
        use tsg_core::analysis::sim::TimingSimulation;
        let extracted =
            extract(&library::c_element_oscillator(), ExtractOptions::default()).unwrap();
        let hand = library::c_element_oscillator_tsg();
        let se = TimingSimulation::run(&extracted, 4);
        let sh = TimingSimulation::run(&hand, 4);
        for label in ["a+", "b+", "c+", "a-", "b-", "c-"] {
            let ee = extracted.event_by_label(label).unwrap();
            let eh = hand.event_by_label(label).unwrap();
            for p in 0..4 {
                assert_eq!(se.time(ee, p), sh.time(eh, p), "{label} period {p}");
            }
        }
    }
}
