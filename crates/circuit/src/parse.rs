//! A small text netlist format (`.ckt`).
//!
//! ```text
//! # Figure 1a of the paper
//! input e = 1 flip          # environment input, falls at t = 0
//! gate a nor(e:2, c:2) = 0  # output a, NOR of e and c, pin delays 2 and 2
//! gate b nor(f:1, c:1) = 0
//! gate c c(a:3, b:2) = 0
//! gate f buf(e:3) = 1
//! ```
//!
//! One declaration per line; `#` starts a comment; `= v` gives the initial
//! value; the optional trailing `flip` on an `input` line schedules the
//! one-shot environment transition at time 0.

use std::fmt;
use std::fmt::Write as _;

use crate::gate::GateKind;
use crate::netlist::{Netlist, NetlistError};

/// Error produced when parsing a `.ckt` file.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ParseCktError {
    /// A line could not be parsed; carries the 1-based line number and a
    /// description.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// The parsed netlist failed validation.
    Netlist(NetlistError),
}

impl fmt::Display for ParseCktError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseCktError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseCktError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for ParseCktError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseCktError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for ParseCktError {
    fn from(e: NetlistError) -> Self {
        ParseCktError::Netlist(e)
    }
}

fn syntax(line: usize, message: impl Into<String>) -> ParseCktError {
    ParseCktError::Syntax {
        line,
        message: message.into(),
    }
}

/// Parses `.ckt` text into a [`Netlist`].
///
/// # Errors
///
/// Returns [`ParseCktError`] on malformed lines or netlist-level
/// violations.
///
/// # Examples
///
/// ```
/// let text = "input x = 0\ngate y inv(x:1) = 1\n";
/// let nl = tsg_circuit::parse::parse_ckt(text)?;
/// assert_eq!(nl.gate_count(), 1);
/// # Ok::<(), tsg_circuit::parse::ParseCktError>(())
/// ```
pub fn parse_ckt(text: &str) -> Result<Netlist, ParseCktError> {
    let mut b = Netlist::builder();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        match words.next() {
            Some("input") => {
                let rest: Vec<&str> = words.collect();
                // forms: `input NAME = V` or `input NAME = V flip`
                if rest.len() < 3 || rest[1] != "=" {
                    return Err(syntax(lineno, "expected `input NAME = 0|1 [flip]`"));
                }
                let name = rest[0];
                let init = parse_bit(rest[2])
                    .ok_or_else(|| syntax(lineno, "initial value must be 0 or 1"))?;
                match rest.get(3) {
                    None => {
                        b.input(name, init);
                    }
                    Some(&"flip") => {
                        b.input_with_flip(name, init);
                    }
                    Some(other) => {
                        return Err(syntax(lineno, format!("unexpected token {other:?}")))
                    }
                }
            }
            Some("gate") => {
                // form: gate NAME kind(in:delay, ...) = V
                let rest = line["gate".len()..].trim();
                let (head, init) = rest
                    .rsplit_once('=')
                    .ok_or_else(|| syntax(lineno, "missing `= 0|1`"))?;
                let init = parse_bit(init.trim())
                    .ok_or_else(|| syntax(lineno, "initial value must be 0 or 1"))?;
                let head = head.trim();
                let (name, call) = head
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| syntax(lineno, "expected `gate NAME kind(...)`"))?;
                let call = call.trim();
                let open = call
                    .find('(')
                    .ok_or_else(|| syntax(lineno, "expected `kind(pins)`"))?;
                if !call.ends_with(')') {
                    return Err(syntax(lineno, "missing `)`"));
                }
                let kind: GateKind = call[..open]
                    .trim()
                    .parse()
                    .map_err(|e| syntax(lineno, format!("{e}")))?;
                let mut pins: Vec<(&str, f64)> = Vec::new();
                let args = &call[open + 1..call.len() - 1];
                for part in args.split(',') {
                    let part = part.trim();
                    if part.is_empty() {
                        continue;
                    }
                    let (pin, delay) = match part.split_once(':') {
                        Some((p, d)) => {
                            let delay: f64 = d
                                .trim()
                                .parse()
                                .map_err(|_| syntax(lineno, format!("bad delay {d:?}")))?;
                            (p.trim(), delay)
                        }
                        None => (part, 0.0),
                    };
                    pins.push((pin, delay));
                }
                b.gate(name.trim(), kind, &pins, init)?;
            }
            Some(other) => return Err(syntax(lineno, format!("unknown directive {other:?}"))),
            None => unreachable!("empty lines are skipped"),
        }
    }
    Ok(b.build()?)
}

fn parse_bit(s: &str) -> Option<bool> {
    match s {
        "0" => Some(false),
        "1" => Some(true),
        _ => None,
    }
}

/// Serialises a netlist back to `.ckt` text; `parse_ckt` round-trips it.
pub fn write_ckt(nl: &Netlist) -> String {
    let mut out = String::new();
    for s in nl.signals() {
        if nl.is_input(s) {
            let flip = if nl.env_flips().contains(&s) {
                " flip"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "input {} = {}{}",
                nl.name(s),
                u8::from(nl.initial_state()[s.index()]),
                flip
            );
        }
    }
    for g in nl.gates() {
        let pins: Vec<String> = g
            .inputs
            .iter()
            .zip(&g.pin_delays)
            .map(|(s, d)| format!("{}:{}", nl.name(*s), d))
            .collect();
        let _ = writeln!(
            out,
            "gate {} {}({}) = {}",
            nl.name(g.output),
            g.kind,
            pins.join(", "),
            u8::from(nl.initial_state()[g.output.index()])
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = "\
# Figure 1a
input e = 1 flip
gate a nor(e:2, c:2) = 0
gate b nor(f:1, c:1) = 0
gate c c(a:3, b:2) = 0
gate f buf(e:3) = 1
";

    #[test]
    fn parses_figure1() {
        let nl = parse_ckt(FIG1).unwrap();
        assert_eq!(nl.signal_count(), 5);
        assert_eq!(nl.gate_count(), 4);
        assert_eq!(nl.env_flips().len(), 1);
        let c = nl.driver(nl.signal("c").unwrap()).unwrap();
        assert_eq!(c.kind, GateKind::CElement);
        assert_eq!(c.pin_delays, vec![3.0, 2.0]);
    }

    #[test]
    fn roundtrip() {
        let nl = parse_ckt(FIG1).unwrap();
        let text = write_ckt(&nl);
        let nl2 = parse_ckt(&text).unwrap();
        assert_eq!(nl.signal_count(), nl2.signal_count());
        assert_eq!(nl.gate_count(), nl2.gate_count());
        assert_eq!(nl.initial_state(), nl2.initial_state());
        assert_eq!(write_ckt(&nl2), text);
    }

    #[test]
    fn parse_matches_library() {
        let parsed = parse_ckt(FIG1).unwrap();
        let built = crate::library::c_element_oscillator();
        assert_eq!(write_ckt(&parsed), write_ckt(&built));
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = parse_ckt("input x = 2\n").unwrap_err();
        assert!(matches!(err, ParseCktError::Syntax { line: 1, .. }));
        let err = parse_ckt("\n\nfrob x\n").unwrap_err();
        assert!(matches!(err, ParseCktError::Syntax { line: 3, .. }));
        let err = parse_ckt("gate y wat(x:1) = 0\n").unwrap_err();
        assert!(err.to_string().contains("wat"));
    }

    #[test]
    fn comments_and_default_delays() {
        let nl = parse_ckt("input x = 0   # the input\ngate y buf(x) = 0\n").unwrap();
        assert_eq!(nl.gates()[0].pin_delays, vec![0.0]);
    }

    #[test]
    fn netlist_errors_propagate() {
        let err = parse_ckt("input x = 0\ngate y inv(x:1, x:1) = 0\n").unwrap_err();
        assert!(matches!(err, ParseCktError::Netlist(_)));
    }
}
