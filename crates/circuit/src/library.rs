//! The paper's circuits, plus generic parametric families.

use tsg_core::SignalGraph;

use crate::gate::GateKind;
use crate::netlist::Netlist;

/// The Figure 1a circuit: a C-element, two NOR gates and a buffer, with the
/// input node `e` falling once at time 0.
///
/// Gate-level reconstruction (pin delays recovered from the paper's own
/// timing tables — every downstream number matches Examples 3–6 and
/// Section VIII.C digit for digit):
///
/// * `a = NOR(e:2, c:2)`, initially 0,
/// * `b = NOR(f:1, c:1)`, initially 0,
/// * `c = C(a:3, b:2)`, initially 0,
/// * `f = BUF(e:3)`, initially 1,
/// * `e` — environment input, initially 1, falls at t = 0.
///
/// # Examples
///
/// ```
/// use tsg_circuit::{library, EventDrivenSim};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = library::c_element_oscillator();
/// let mut sim = EventDrivenSim::new(&nl);
/// let trace = sim.run(100.0, 10_000)?;
/// let a = nl.signal("a").unwrap();
/// assert_eq!(EventDrivenSim::steady_period(&trace, a, true), Some(10.0));
/// # Ok(())
/// # }
/// ```
pub fn c_element_oscillator() -> Netlist {
    let mut b = Netlist::builder();
    b.input_with_flip("e", true);
    b.gate("a", GateKind::Nor, &[("e", 2.0), ("c", 2.0)], false)
        .expect("valid arity and delays");
    b.gate("b", GateKind::Nor, &[("f", 1.0), ("c", 1.0)], false)
        .expect("valid arity and delays");
    b.gate("c", GateKind::CElement, &[("a", 3.0), ("b", 2.0)], false)
        .expect("valid arity and delays");
    b.gate("f", GateKind::Buffer, &[("e", 3.0)], true)
        .expect("valid arity and delays");
    b.build().expect("library circuit is well-formed")
}

/// The Figure 1b / Figure 2c **Timed Signal Graph** of the oscillator,
/// built directly (the same graph `tsg-extract` derives from
/// [`c_element_oscillator`]).
///
/// # Examples
///
/// ```
/// use tsg_core::analysis::CycleTimeAnalysis;
/// use tsg_circuit::library;
///
/// let tsg = library::c_element_oscillator_tsg();
/// let tau = CycleTimeAnalysis::run(&tsg).unwrap().cycle_time();
/// assert_eq!(tau.as_f64(), 10.0);
/// ```
pub fn c_element_oscillator_tsg() -> SignalGraph {
    let mut b = SignalGraph::builder();
    let e = b.initial_event("e-");
    let f = b.finite_event("f-");
    let ap = b.event("a+");
    let bp = b.event("b+");
    let cp = b.event("c+");
    let am = b.event("a-");
    let bm = b.event("b-");
    let cm = b.event("c-");
    b.arc(e, f, 3.0);
    b.disengageable_arc(e, ap, 2.0);
    b.disengageable_arc(f, bp, 1.0);
    b.arc(ap, cp, 3.0);
    b.arc(bp, cp, 2.0);
    b.arc(cp, am, 2.0);
    b.arc(cp, bm, 1.0);
    b.arc(am, cm, 3.0);
    b.arc(bm, cm, 2.0);
    b.marked_arc(cm, ap, 2.0);
    b.marked_arc(cm, bp, 1.0);
    b.build().expect("the paper's graph is well-formed")
}

/// The Section VIII.D circuit: a Muller pipeline of `n` C-elements closed
/// into a ring, one data token, every gate delay equal to `delay`.
///
/// Stage `k` is a C-element `s_k = C(s_{k-1}, i_k)` with `i_k = INV(s_{k+1})`
/// (indices mod `n`). Initially the last stage's output is high and all
/// others low, so inverter `i_{n-2}` reads the token.
///
/// # Panics
///
/// Panics if `n < 3`.
///
/// # Examples
///
/// ```
/// use tsg_circuit::{library, EventDrivenSim};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = library::muller_ring(5, 1.0);
/// let mut sim = EventDrivenSim::new(&nl);
/// let trace = sim.run(300.0, 100_000)?;
/// let a = nl.signal("s0").unwrap();
/// // Section VIII.D: τ = 20/3, realised as the repeating pattern 6,7,7.
/// let p = EventDrivenSim::average_period(&trace, a, true).unwrap();
/// assert!((p - 20.0 / 3.0).abs() < 0.5);
/// # Ok(())
/// # }
/// ```
pub fn muller_ring(n: usize, delay: f64) -> Netlist {
    assert!(n >= 3, "a Muller ring needs at least three stages");
    let mut b = Netlist::builder();
    for k in 0..n {
        let prev = format!("s{}", (k + n - 1) % n);
        let inv = format!("i{k}");
        let init = k == n - 1;
        b.gate(
            &format!("s{k}"),
            GateKind::CElement,
            &[(prev.as_str(), delay), (inv.as_str(), delay)],
            init,
        )
        .expect("valid arity and delays");
    }
    for k in 0..n {
        let next = format!("s{}", (k + 1) % n);
        // i_k = INV(s_{k+1}); initially high unless it reads the token.
        let init = (k + 1) % n != n - 1;
        b.gate(
            &format!("i{k}"),
            GateKind::Inverter,
            &[(next.as_str(), delay)],
            init,
        )
        .expect("valid arity and delays");
    }
    b.build().expect("library circuit is well-formed")
}

/// An `n`-inverter ring oscillator (`n` odd) with uniform `delay`.
///
/// # Panics
///
/// Panics if `n` is even or `n < 3`.
pub fn inverter_ring(n: usize, delay: f64) -> Netlist {
    assert!(n >= 3 && n % 2 == 1, "inverter rings need odd n >= 3");
    let mut b = Netlist::builder();
    for i in 0..n {
        let input = format!("g{}", (i + n - 1) % n);
        b.gate(
            &format!("g{i}"),
            GateKind::Inverter,
            &[(input.as_str(), delay)],
            i % 2 == 1,
        )
        .expect("valid arity and delays");
    }
    b.build().expect("library circuit is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::EventDrivenSim;

    #[test]
    fn oscillator_netlist_shape() {
        let nl = c_element_oscillator();
        assert_eq!(nl.signal_count(), 5);
        assert_eq!(nl.gate_count(), 4);
        assert_eq!(nl.env_flips().len(), 1);
    }

    #[test]
    fn oscillator_tsg_matches_paper_structure() {
        let sg = c_element_oscillator_tsg();
        assert_eq!(sg.event_count(), 8);
        assert_eq!(sg.arc_count(), 11);
        assert_eq!(sg.border_events().len(), 2);
    }

    #[test]
    fn muller_ring_initial_state_consistency() {
        let nl = muller_ring(5, 1.0);
        // Exactly one gate excited initially: s0 = C(s4=1, i0=1) wants 1.
        let excited = nl.excited_gates(nl.initial_state());
        assert_eq!(excited.len(), 1);
        let g = &nl.gates()[excited[0]];
        assert_eq!(nl.name(g.output), "s0");
    }

    #[test]
    fn muller_ring5_average_period_is_20_3() {
        let nl = muller_ring(5, 1.0);
        let mut sim = EventDrivenSim::new(&nl);
        let trace = sim.run(2000.0, 1_000_000).unwrap();
        let s = nl.signal("s0").unwrap();
        let p = EventDrivenSim::average_period(&trace, s, true).unwrap();
        assert!((p - 20.0 / 3.0).abs() < 0.05, "period {p}");
    }

    #[test]
    fn muller_ring5_first_occurrences_match_section8d() {
        // t_{a+0}(a+_i) − t_{a+0}(a+_0) = 6, 13, 20, 26, ... for s0.
        let nl = muller_ring(5, 1.0);
        let mut sim = EventDrivenSim::new(&nl);
        let trace = sim.run(100.0, 100_000).unwrap();
        let s = nl.signal("s0").unwrap();
        let rises: Vec<f64> = trace
            .iter()
            .filter(|t| t.signal == s && t.value)
            .map(|t| t.time)
            .collect();
        let deltas: Vec<f64> = rises.iter().map(|t| t - rises[0]).collect();
        assert_eq!(&deltas[..5], &[0.0, 6.0, 13.0, 20.0, 26.0]);
    }

    #[test]
    fn muller_rings_of_other_sizes_run() {
        for n in [3usize, 4, 6, 8] {
            let nl = muller_ring(n, 1.0);
            let mut sim = EventDrivenSim::new(&nl);
            let trace = sim.run(200.0, 100_000).unwrap();
            assert!(!trace.is_empty(), "n={n}");
        }
    }

    #[test]
    fn scaled_delays_scale_the_period() {
        let nl = c_element_oscillator();
        let mut sim = EventDrivenSim::new(&nl);
        let t1 = sim.run(200.0, 100_000).unwrap();
        let a = nl.signal("a").unwrap();
        let p1 = EventDrivenSim::steady_period(&t1, a, true).unwrap();
        assert_eq!(p1, 10.0);
        // inverter_ring delay scaling
        let nl3 = inverter_ring(3, 2.5);
        let mut sim3 = EventDrivenSim::new(&nl3);
        let t3 = sim3.run(200.0, 100_000).unwrap();
        let g0 = nl3.signal("g0").unwrap();
        assert_eq!(EventDrivenSim::steady_period(&t3, g0, true), Some(15.0));
    }
}
