//! Gate kinds and their next-state functions.

use std::fmt;
use std::str::FromStr;

/// The gate types of the speed-independent circuit library.
///
/// Sequential elements (the C-element and the majority gate on a tie) hold
/// their previous output; combinational gates ignore it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GateKind {
    /// Muller C-element: output follows the inputs when they agree,
    /// otherwise holds.
    CElement,
    /// NOR: high exactly when all inputs are low.
    Nor,
    /// NAND: low exactly when all inputs are high.
    Nand,
    /// AND of all inputs.
    And,
    /// OR of all inputs.
    Or,
    /// XOR (parity) of all inputs.
    Xor,
    /// XNOR (complement parity).
    Xnor,
    /// Single-input inverter.
    Inverter,
    /// Single-input buffer (delay element).
    Buffer,
    /// Majority vote; holds on a tie (requires >= 3 inputs in validation,
    /// odd arities never tie).
    Majority,
}

impl GateKind {
    /// Evaluates the gate: next output value given the input values and the
    /// current output (`current` matters only for sequential kinds).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `inputs` is empty; arity rules are
    /// enforced by [`NetlistBuilder`](crate::netlist::NetlistBuilder).
    pub fn eval(self, inputs: &[bool], current: bool) -> bool {
        debug_assert!(!inputs.is_empty(), "gates need at least one input");
        match self {
            GateKind::CElement => {
                if inputs.iter().all(|&x| x) {
                    true
                } else if inputs.iter().all(|&x| !x) {
                    false
                } else {
                    current
                }
            }
            GateKind::Nor => !inputs.iter().any(|&x| x),
            GateKind::Nand => !inputs.iter().all(|&x| x),
            GateKind::And => inputs.iter().all(|&x| x),
            GateKind::Or => inputs.iter().any(|&x| x),
            GateKind::Xor => inputs.iter().fold(false, |acc, &x| acc ^ x),
            GateKind::Xnor => !inputs.iter().fold(false, |acc, &x| acc ^ x),
            GateKind::Inverter => !inputs[0],
            GateKind::Buffer => inputs[0],
            GateKind::Majority => {
                let ones = inputs.iter().filter(|&&x| x).count();
                let zeros = inputs.len() - ones;
                if ones > zeros {
                    true
                } else if zeros > ones {
                    false
                } else {
                    current
                }
            }
        }
    }

    /// Permitted input arities.
    pub fn arity_ok(self, n: usize) -> bool {
        match self {
            GateKind::Inverter | GateKind::Buffer => n == 1,
            GateKind::Majority => n >= 3,
            _ => n >= 1,
        }
    }

    /// `true` for gates whose output depends on its previous value.
    pub fn is_sequential(self) -> bool {
        matches!(self, GateKind::CElement | GateKind::Majority)
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::CElement => "c",
            GateKind::Nor => "nor",
            GateKind::Nand => "nand",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Inverter => "inv",
            GateKind::Buffer => "buf",
            GateKind::Majority => "maj",
        };
        f.write_str(s)
    }
}

/// Error returned when parsing an unknown gate kind name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseGateKindError(pub String);

impl fmt::Display for ParseGateKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown gate kind {:?}", self.0)
    }
}

impl std::error::Error for ParseGateKindError {}

impl FromStr for GateKind {
    type Err = ParseGateKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s.to_ascii_lowercase().as_str() {
            "c" | "celement" | "c-element" => GateKind::CElement,
            "nor" => GateKind::Nor,
            "nand" => GateKind::Nand,
            "and" => GateKind::And,
            "or" => GateKind::Or,
            "xor" => GateKind::Xor,
            "xnor" => GateKind::Xnor,
            "inv" | "not" | "inverter" => GateKind::Inverter,
            "buf" | "buffer" => GateKind::Buffer,
            "maj" | "majority" => GateKind::Majority,
            other => return Err(ParseGateKindError(other.to_owned())),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c_element_truth_table() {
        assert!(GateKind::CElement.eval(&[true, true], false));
        assert!(!GateKind::CElement.eval(&[false, false], true));
        assert!(GateKind::CElement.eval(&[true, false], true)); // hold
        assert!(!GateKind::CElement.eval(&[true, false], false)); // hold
    }

    #[test]
    fn combinational_gates() {
        assert!(GateKind::Nor.eval(&[false, false], false));
        assert!(!GateKind::Nor.eval(&[true, false], false));
        assert!(!GateKind::Nand.eval(&[true, true], true));
        assert!(GateKind::And.eval(&[true, true], false));
        assert!(GateKind::Or.eval(&[false, true], false));
        assert!(GateKind::Xor.eval(&[true, false], false));
        assert!(!GateKind::Xor.eval(&[true, true], false));
        assert!(GateKind::Xnor.eval(&[true, true], false));
        assert!(!GateKind::Inverter.eval(&[true], false));
        assert!(GateKind::Buffer.eval(&[true], false));
    }

    #[test]
    fn majority_votes_and_holds() {
        assert!(GateKind::Majority.eval(&[true, true, false], false));
        assert!(!GateKind::Majority.eval(&[true, false, false], true));
        assert!(GateKind::Majority.eval(&[true, true, false, false], true)); // tie holds
    }

    #[test]
    fn arity_rules() {
        assert!(GateKind::Inverter.arity_ok(1));
        assert!(!GateKind::Inverter.arity_ok(2));
        assert!(GateKind::Majority.arity_ok(3));
        assert!(!GateKind::Majority.arity_ok(2));
        assert!(GateKind::CElement.arity_ok(2));
    }

    #[test]
    fn parse_roundtrip() {
        for k in [
            GateKind::CElement,
            GateKind::Nor,
            GateKind::Nand,
            GateKind::And,
            GateKind::Or,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Inverter,
            GateKind::Buffer,
            GateKind::Majority,
        ] {
            let parsed: GateKind = k.to_string().parse().unwrap();
            assert_eq!(parsed, k);
        }
        assert!("frobnicator".parse::<GateKind>().is_err());
    }

    #[test]
    fn sequential_classification() {
        assert!(GateKind::CElement.is_sequential());
        assert!(GateKind::Majority.is_sequential());
        assert!(!GateKind::Nor.is_sequential());
    }
}
