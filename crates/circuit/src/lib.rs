//! # tsg-circuit — gate-level asynchronous circuits
//!
//! The application substrate of the paper's Section VIII: speed-independent
//! circuits built from C-elements, NOR/NAND gates, inverters and buffers,
//! with *per-input-pin* propagation delays ("individual input-output
//! characteristics of a transistor-level gate implementation", Section
//! VIII.A).
//!
//! * [`gate`] — gate kinds and their next-state functions,
//! * [`netlist`] — signals, gates, environment inputs; builder and
//!   validation,
//! * [`sim`] — an event-driven simulator with transport (per-pin) delays,
//!   used to cross-validate analytical cycle times against observed
//!   steady-state periods,
//! * [`library`] — the paper's circuits: the Figure 1 C-element oscillator
//!   and the Section VIII.D Muller ring, plus generic rings and pipelines,
//! * [`parse`] — a small text netlist format (`.ckt`) reader/writer.

pub mod gate;
pub mod library;
pub mod netlist;
pub mod parse;
pub mod sim;

pub use gate::GateKind;
pub use netlist::{Gate, Netlist, NetlistBuilder, NetlistError, SignalId};
pub use sim::{EventDrivenSim, SimError, SimQueue, Transition};
