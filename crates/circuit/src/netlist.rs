//! Netlists: signals, gates with per-pin delays, environment inputs.

use std::collections::HashMap;
use std::fmt;

use crate::gate::GateKind;

/// Identifier of a signal (a named node of the circuit).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SignalId(pub u32);

impl SignalId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A gate instance: kind, ordered input pins with per-pin delays, output.
#[derive(Clone, Debug, PartialEq)]
pub struct Gate {
    /// The gate function.
    pub kind: GateKind,
    /// Input signals, in pin order.
    pub inputs: Vec<SignalId>,
    /// Propagation delay from each input pin to the output (same order as
    /// `inputs`).
    pub pin_delays: Vec<f64>,
    /// The output signal this gate drives.
    pub output: SignalId,
}

/// A gate-level circuit with an initial state.
///
/// Signals are either *gate outputs* (driven by exactly one gate) or
/// *inputs* (driven by the environment). Environment inputs may carry a
/// single scheduled transition at time 0 — the paper's Figure 1 input `e`
/// falls once at the start — making the circuit autonomous afterwards.
///
/// # Examples
///
/// ```
/// use tsg_circuit::{GateKind, Netlist};
///
/// # fn main() -> Result<(), tsg_circuit::NetlistError> {
/// let mut b = Netlist::builder();
/// let x = b.input("x", false);
/// let y = b.gate("y", GateKind::Inverter, &[("x", 1.0)], true)?;
/// let nl = b.build()?;
/// assert_eq!(nl.signal_count(), 2);
/// assert!(nl.driver(y).is_some());
/// assert!(nl.driver(x).is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Netlist {
    names: Vec<String>,
    by_name: HashMap<String, SignalId>,
    gates: Vec<Gate>,
    driver: Vec<Option<usize>>,       // signal -> gate index
    fanout: Vec<Vec<(usize, usize)>>, // signal -> (gate index, pin index)
    initial: Vec<bool>,
    /// Environment inputs that flip once at time 0.
    env_flips: Vec<SignalId>,
}

/// Error produced while building or validating a [`Netlist`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum NetlistError {
    /// Two signals share a name.
    DuplicateSignal(String),
    /// A gate references an unknown signal name.
    UnknownSignal(String),
    /// A signal is driven by more than one gate.
    MultipleDrivers(String),
    /// A gate has an invalid number of inputs for its kind.
    BadArity {
        /// The gate's output signal name.
        output: String,
        /// The offending input count.
        arity: usize,
    },
    /// A pin delay is negative or non-finite.
    BadDelay {
        /// The gate's output signal name.
        output: String,
        /// The offending value.
        delay: f64,
    },
    /// The declared initial state is inconsistent: a non-sequential gate's
    /// output disagrees with its inputs *and* the gate is listed as stable.
    /// (Excited-at-reset gates are permitted; this error is reserved for
    /// future strict modes and currently unused.)
    InconsistentInitialState(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateSignal(n) => write!(f, "duplicate signal {n:?}"),
            NetlistError::UnknownSignal(n) => write!(f, "unknown signal {n:?}"),
            NetlistError::MultipleDrivers(n) => write!(f, "signal {n:?} has multiple drivers"),
            NetlistError::BadArity { output, arity } => {
                write!(f, "gate driving {output:?} has invalid arity {arity}")
            }
            NetlistError::BadDelay { output, delay } => {
                write!(f, "gate driving {output:?} has invalid pin delay {delay}")
            }
            NetlistError::InconsistentInitialState(n) => {
                write!(f, "initial state inconsistent at signal {n:?}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

impl Netlist {
    /// Starts building a netlist.
    pub fn builder() -> NetlistBuilder {
        NetlistBuilder::default()
    }

    /// Number of signals.
    pub fn signal_count(&self) -> usize {
        self.names.len()
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// The name of `s`.
    pub fn name(&self, s: SignalId) -> &str {
        &self.names[s.index()]
    }

    /// Looks a signal up by name.
    pub fn signal(&self, name: &str) -> Option<SignalId> {
        self.by_name.get(name).copied()
    }

    /// All signals in insertion order.
    pub fn signals(&self) -> impl ExactSizeIterator<Item = SignalId> + '_ {
        (0..self.names.len() as u32).map(SignalId)
    }

    /// The gates, in insertion order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The gate driving `s`, if `s` is a gate output.
    pub fn driver(&self, s: SignalId) -> Option<&Gate> {
        self.driver[s.index()].map(|i| &self.gates[i])
    }

    /// Gates (with pin position) that read `s`.
    pub fn fanout(&self, s: SignalId) -> &[(usize, usize)] {
        &self.fanout[s.index()]
    }

    /// The declared initial value of every signal.
    pub fn initial_state(&self) -> &[bool] {
        &self.initial
    }

    /// Environment inputs that flip once at time 0 (e.g. `e` in Figure 1).
    pub fn env_flips(&self) -> &[SignalId] {
        &self.env_flips
    }

    /// `true` when `s` is an environment input (no driving gate).
    pub fn is_input(&self, s: SignalId) -> bool {
        self.driver[s.index()].is_none()
    }

    /// Evaluates the next value of every gate output in `state`, returning
    /// the set of *excited* gates (whose output wants to change).
    pub fn excited_gates(&self, state: &[bool]) -> Vec<usize> {
        self.gates
            .iter()
            .enumerate()
            .filter(|(_, g)| {
                let ins: Vec<bool> = g.inputs.iter().map(|s| state[s.index()]).collect();
                g.kind.eval(&ins, state[g.output.index()]) != state[g.output.index()]
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// Builder for [`Netlist`]; created by [`Netlist::builder`].
#[derive(Clone, Debug, Default)]
pub struct NetlistBuilder {
    names: Vec<String>,
    by_name: HashMap<String, SignalId>,
    initial: Vec<bool>,
    gates: Vec<Gate>,
    env_flips: Vec<SignalId>,
    errors: Vec<NetlistError>,
}

impl NetlistBuilder {
    fn intern(&mut self, name: &str, initial: Option<bool>) -> SignalId {
        if let Some(&id) = self.by_name.get(name) {
            if let Some(v) = initial {
                self.initial[id.index()] = v;
            }
            return id;
        }
        let id = SignalId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        self.initial.push(initial.unwrap_or(false));
        id
    }

    /// Declares an environment input with its initial value.
    pub fn input(&mut self, name: &str, initial: bool) -> SignalId {
        self.intern(name, Some(initial))
    }

    /// Declares an environment input that flips once at time 0 (like `e`
    /// in Figure 1, which starts high and falls at the origin).
    pub fn input_with_flip(&mut self, name: &str, initial: bool) -> SignalId {
        let id = self.intern(name, Some(initial));
        self.env_flips.push(id);
        id
    }

    /// Adds a gate driving `output` from `(input name, pin delay)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] on arity or delay violations (signal-level
    /// errors like duplicate drivers surface at [`build`](Self::build)).
    pub fn gate(
        &mut self,
        output: &str,
        kind: GateKind,
        inputs: &[(&str, f64)],
        initial: bool,
    ) -> Result<SignalId, NetlistError> {
        if !kind.arity_ok(inputs.len()) {
            return Err(NetlistError::BadArity {
                output: output.to_owned(),
                arity: inputs.len(),
            });
        }
        for &(_, d) in inputs {
            if !d.is_finite() || d < 0.0 {
                return Err(NetlistError::BadDelay {
                    output: output.to_owned(),
                    delay: d,
                });
            }
        }
        let out = self.intern(output, Some(initial));
        let ins: Vec<SignalId> = inputs.iter().map(|(n, _)| self.intern(n, None)).collect();
        let delays: Vec<f64> = inputs.iter().map(|&(_, d)| d).collect();
        self.gates.push(Gate {
            kind,
            inputs: ins,
            pin_delays: delays,
            output: out,
        });
        Ok(out)
    }

    /// Validates and builds the netlist.
    ///
    /// # Errors
    ///
    /// Returns the first accumulated or structural [`NetlistError`].
    pub fn build(self) -> Result<Netlist, NetlistError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        let n = self.names.len();
        let mut driver: Vec<Option<usize>> = vec![None; n];
        let mut fanout: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for (gi, g) in self.gates.iter().enumerate() {
            if driver[g.output.index()].is_some() {
                return Err(NetlistError::MultipleDrivers(
                    self.names[g.output.index()].clone(),
                ));
            }
            driver[g.output.index()] = Some(gi);
            for (pin, s) in g.inputs.iter().enumerate() {
                fanout[s.index()].push((gi, pin));
            }
        }
        Ok(Netlist {
            names: self.names,
            by_name: self.by_name,
            gates: self.gates,
            driver,
            fanout,
            initial: self.initial,
            env_flips: self.env_flips,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_inverter_pair() {
        let mut b = Netlist::builder();
        b.input("x", false);
        b.gate("y", GateKind::Inverter, &[("x", 1.0)], true)
            .unwrap();
        b.gate("z", GateKind::Inverter, &[("y", 2.0)], false)
            .unwrap();
        let nl = b.build().unwrap();
        assert_eq!(nl.signal_count(), 3);
        assert_eq!(nl.gate_count(), 2);
        let y = nl.signal("y").unwrap();
        assert_eq!(nl.fanout(y).len(), 1);
        assert_eq!(nl.name(y), "y");
    }

    #[test]
    fn arity_violation() {
        let mut b = Netlist::builder();
        b.input("x", false);
        b.input("w", false);
        let err = b
            .gate("y", GateKind::Inverter, &[("x", 1.0), ("w", 1.0)], false)
            .unwrap_err();
        assert!(matches!(err, NetlistError::BadArity { .. }));
    }

    #[test]
    fn delay_violation() {
        let mut b = Netlist::builder();
        b.input("x", false);
        let err = b
            .gate("y", GateKind::Buffer, &[("x", -1.0)], false)
            .unwrap_err();
        assert!(matches!(err, NetlistError::BadDelay { .. }));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut b = Netlist::builder();
        b.input("x", false);
        b.gate("y", GateKind::Buffer, &[("x", 1.0)], false).unwrap();
        b.gate("y", GateKind::Inverter, &[("x", 1.0)], false)
            .unwrap();
        assert!(matches!(b.build(), Err(NetlistError::MultipleDrivers(_))));
    }

    #[test]
    fn forward_references_allowed() {
        // `a` reads `c` before `c` is declared as a gate output.
        let mut b = Netlist::builder();
        b.input_with_flip("e", true);
        b.gate("a", GateKind::Nor, &[("e", 2.0), ("c", 2.0)], false)
            .unwrap();
        b.gate("c", GateKind::Buffer, &[("a", 3.0)], false).unwrap();
        let nl = b.build().unwrap();
        assert_eq!(nl.env_flips().len(), 1);
        assert!(nl.is_input(nl.signal("e").unwrap()));
        assert!(!nl.is_input(nl.signal("c").unwrap()));
    }

    #[test]
    fn excited_gates_in_state() {
        let mut b = Netlist::builder();
        b.input("x", true);
        b.gate("y", GateKind::Inverter, &[("x", 1.0)], true)
            .unwrap();
        let nl = b.build().unwrap();
        // y = 1 but INV(1) = 0: excited.
        assert_eq!(nl.excited_gates(nl.initial_state()), vec![0]);
        let calm = vec![true, false];
        assert!(nl.excited_gates(&calm).is_empty());
    }
}
