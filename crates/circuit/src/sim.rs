//! Event-driven timing simulation of a netlist (transport-delay model).
//!
//! Every input pin of every gate has a transport delay: a change of the
//! input signal at time `t` becomes visible to the gate at `t + δ(pin)`.
//! A gate's output flips the instant its function, evaluated on the
//! *delayed* pin views, disagrees with the current output. This is exactly
//! the MAX-execution semantics of Timed Signal Graphs (Section III.C), so
//! the simulator serves as an independent oracle for the analytical cycle
//! time: after the transient, the observed occurrence distances of every
//! repeating signal must equal τ.
//!
//! The pending-event machinery — deterministic `(time, seq)` ordering,
//! NaN and negative-delay rejection — lives in the shared
//! [`tsg_sim::EventQueue`] kernel; this module only contributes the gate
//! semantics. Enable [`EventDrivenSim::enable_trace`] to capture every
//! signal change in a [`TraceRecorder`] and dump a VCD waveform.

use std::fmt;

use tsg_sim::{AnyQueue, EventQueue, QueueKind, TraceId, TraceRecorder};

use crate::netlist::{Netlist, SignalId};

/// One recorded signal change.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Transition {
    /// Simulation time of the change.
    pub time: f64,
    /// The signal that changed.
    pub signal: SignalId,
    /// The value after the change.
    pub value: bool,
}

/// Error conditions of [`EventDrivenSim::run`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The transition budget was exhausted before the horizon — typically a
    /// zero-delay oscillation.
    EventBudgetExhausted {
        /// Number of transitions processed before giving up.
        processed: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EventBudgetExhausted { processed } => {
                write!(f, "event budget exhausted after {processed} transitions")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Pin-arrival payload carried by the kernel event queue.
#[derive(Clone, Copy, Debug)]
struct Arrival {
    gate: usize,
    pin: usize,
    value: bool,
}

/// Opaque, reusable queue storage for [`EventDrivenSim`].
///
/// A simulator borrows its netlist, so a long-running service cannot
/// keep one `EventDrivenSim` warm across requests for different
/// netlists — but it *can* keep the queue: `SimQueue` outlives any one
/// simulator, carrying its allocation (and backend choice) from netlist
/// to netlist. Build simulators with
/// [`EventDrivenSim::with_reused_queue`] and reclaim the storage with
/// [`EventDrivenSim::into_queue`].
#[derive(Clone, Debug)]
pub struct SimQueue {
    inner: EventQueue<Arrival, AnyQueue<Arrival>>,
}

impl SimQueue {
    /// An empty queue of the given backend kind.
    pub fn new(kind: QueueKind) -> Self {
        SimQueue {
            inner: EventQueue::with_backend(AnyQueue::of(kind)),
        }
    }

    /// The backend kind this queue runs on.
    pub fn kind(&self) -> QueueKind {
        self.inner.backend().kind()
    }

    /// Pending-event capacity (for the warm-pool zero-allocation
    /// assertions).
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }
}

/// The event-driven simulator.
///
/// # Examples
///
/// ```
/// use tsg_circuit::{EventDrivenSim, GateKind, Netlist};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A three-inverter ring oscillator with unit delays: period 6.
/// let mut b = Netlist::builder();
/// b.gate("a", GateKind::Inverter, &[("c", 1.0)], false)?;
/// b.gate("b", GateKind::Inverter, &[("a", 1.0)], true)?;
/// b.gate("c", GateKind::Inverter, &[("b", 1.0)], false)?;
/// let nl = b.build()?;
///
/// let mut sim = EventDrivenSim::new(&nl);
/// let trace = sim.run(100.0, 10_000)?;
/// let a = nl.signal("a").unwrap();
/// let period = EventDrivenSim::steady_period(&trace, a, true).unwrap();
/// assert_eq!(period, 6.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EventDrivenSim<'n> {
    netlist: &'n Netlist,
    state: Vec<bool>,
    views: Vec<Vec<bool>>,
    queue: EventQueue<Arrival, AnyQueue<Arrival>>,
    trace: Option<(TraceRecorder, Vec<TraceId>)>,
}

impl<'n> EventDrivenSim<'n> {
    /// Prepares a simulation from the netlist's initial state on the
    /// default binary-heap queue backend.
    pub fn new(netlist: &'n Netlist) -> Self {
        Self::with_queue(netlist, QueueKind::Heap)
    }

    /// Prepares a simulation running on the chosen kernel queue backend.
    ///
    /// Backends pop bit-identical streams, so this is purely a
    /// performance choice: the calendar backend suits the bounded pin
    /// delays of gate libraries. The queue is pre-sized to the netlist's
    /// total fanout — a sizing heuristic for the typical pending load
    /// (a fast signal feeding a slow pin can keep several arrivals in
    /// flight per pin, growing it further) — and [`EventDrivenSim::run`]
    /// reuses whatever allocation the first run settles on across
    /// restarts.
    pub fn with_queue(netlist: &'n Netlist, kind: QueueKind) -> Self {
        Self::with_reused_queue(netlist, SimQueue::new(kind))
    }

    /// Prepares a simulation on a recycled [`SimQueue`].
    ///
    /// The queue is cleared (capacity-preserving) and re-sized to this
    /// netlist's fanout, so a service replaying many netlists through
    /// one queue allocates only when a request outgrows every previous
    /// one. Results are bit-identical to a fresh queue of the same kind:
    /// `clear` resets the clock and sequence counter.
    pub fn with_reused_queue(netlist: &'n Netlist, queue: SimQueue) -> Self {
        let state = netlist.initial_state().to_vec();
        let views: Vec<Vec<bool>> = netlist
            .gates()
            .iter()
            .map(|g| g.inputs.iter().map(|s| state[s.index()]).collect())
            .collect();
        let mut queue = queue.inner;
        queue.clear();
        queue.reserve(views.iter().map(Vec::len).sum());
        EventDrivenSim {
            netlist,
            state,
            views,
            queue,
            trace: None,
        }
    }

    /// Releases the simulator's queue storage for reuse with another
    /// netlist.
    pub fn into_queue(self) -> SimQueue {
        SimQueue { inner: self.queue }
    }

    /// The label of the queue backend this simulator runs on.
    pub fn queue_backend(&self) -> &'static str {
        self.queue.backend_name()
    }

    /// Attaches a [`TraceRecorder`] capturing every signal change.
    ///
    /// All netlist signals are declared up front; [`EventDrivenSim::run`]
    /// records their initial values at `t = 0` when it starts, so the
    /// resulting VCD shows the full state. Retrieve the recorder with
    /// [`EventDrivenSim::take_trace`] afterwards.
    pub fn enable_trace(&mut self) {
        let mut recorder = TraceRecorder::new("netlist");
        let ids: Vec<TraceId> = self
            .netlist
            .signals()
            .map(|s| recorder.declare(self.netlist.name(s)))
            .collect();
        self.trace = Some((recorder, ids));
    }

    /// The attached trace recorder, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceRecorder> {
        self.trace.as_ref().map(|(rec, _)| rec)
    }

    /// Detaches and returns the trace recorder.
    pub fn take_trace(&mut self) -> Option<TraceRecorder> {
        self.trace.take().map(|(rec, _)| rec)
    }

    /// Changes `signal` to `value` at `time`: records the transition and
    /// schedules pin arrivals at every fanout gate.
    fn flip(&mut self, trace: &mut Vec<Transition>, time: f64, signal: SignalId, value: bool) {
        self.state[signal.index()] = value;
        trace.push(Transition {
            time,
            signal,
            value,
        });
        if let Some((recorder, ids)) = &mut self.trace {
            recorder.record(time, ids[signal.index()], value);
        }
        for &(g, pin) in self.netlist.fanout(signal) {
            let delay = self.netlist.gates()[g].pin_delays[pin];
            // The kernel rejects NaN and negative effective delays at
            // enqueue time (netlist validation already guarantees both).
            self.queue.schedule(
                time + delay,
                Arrival {
                    gate: g,
                    pin,
                    value,
                },
            );
        }
    }

    /// Re-evaluates gate `g` on its delayed views; flips its output at
    /// `time` if excited.
    fn settle(&mut self, trace: &mut Vec<Transition>, time: f64, g: usize) {
        let gate = &self.netlist.gates()[g];
        let out = gate.output;
        let next = gate.kind.eval(&self.views[g], self.state[out.index()]);
        if next != self.state[out.index()] {
            self.flip(trace, time, out, next);
        }
    }

    /// Runs until `horizon` (inclusive) or `max_transitions`, returning the
    /// chronological trace of signal changes.
    ///
    /// Every call restarts the simulation from the netlist's initial
    /// state at `t = 0`; running twice deterministically replays the
    /// identical transition stream. (An attached trace recorder keeps
    /// accumulating — detach it with [`EventDrivenSim::take_trace`]
    /// between runs for one waveform per run.)
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventBudgetExhausted`] when `max_transitions`
    /// signal changes occur before the horizon — the signature of a
    /// zero-delay loop.
    pub fn run(
        &mut self,
        horizon: f64,
        max_transitions: usize,
    ) -> Result<Vec<Transition>, SimError> {
        self.state.copy_from_slice(self.netlist.initial_state());
        for (g, view) in self.views.iter_mut().enumerate() {
            for (pin, s) in self.netlist.gates()[g].inputs.iter().enumerate() {
                view[pin] = self.state[s.index()];
            }
        }
        self.queue.clear();
        if let Some((recorder, ids)) = &mut self.trace {
            // Snapshot the (just reset) initial state so the waveform's
            // $dumpvars always matches the replayed edges.
            for s in self.netlist.signals() {
                recorder.record(0.0, ids[s.index()], self.state[s.index()]);
            }
        }

        let mut trace = Vec::new();

        // Environment one-shot flips at t = 0.
        for &s in self.netlist.env_flips() {
            let v = !self.state[s.index()];
            self.flip(&mut trace, 0.0, s, v);
        }
        // Gates excited in the initial state fire at t = 0.
        for g in 0..self.netlist.gate_count() {
            self.settle(&mut trace, 0.0, g);
        }

        while let Some(ev) = self.queue.pop() {
            if ev.time > horizon {
                break;
            }
            if trace.len() >= max_transitions {
                return Err(SimError::EventBudgetExhausted {
                    processed: trace.len(),
                });
            }
            let Arrival { gate, pin, value } = ev.payload;
            self.views[gate][pin] = value;
            self.settle(&mut trace, ev.time, gate);
        }
        Ok(trace)
    }

    /// The occurrence distance between the last two transitions of `signal`
    /// to `value` in `trace` — the steady-state period when the transient
    /// has died out.
    pub fn steady_period(trace: &[Transition], signal: SignalId, value: bool) -> Option<f64> {
        let times: Vec<f64> = trace
            .iter()
            .filter(|t| t.signal == signal && t.value == value)
            .map(|t| t.time)
            .collect();
        (times.len() >= 2).then(|| times[times.len() - 1] - times[times.len() - 2])
    }

    /// Average occurrence distance of `signal` rising over the second half
    /// of the trace — the empirical cycle-time estimate.
    pub fn average_period(trace: &[Transition], signal: SignalId, value: bool) -> Option<f64> {
        let times: Vec<f64> = trace
            .iter()
            .filter(|t| t.signal == signal && t.value == value)
            .map(|t| t.time)
            .collect();
        if times.len() < 3 {
            return None;
        }
        let mid = times.len() / 2;
        Some((times[times.len() - 1] - times[mid]) / (times.len() - 1 - mid) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use crate::netlist::Netlist;

    fn inverter_ring(n: usize) -> Netlist {
        assert!(n % 2 == 1);
        let mut b = Netlist::builder();
        for i in 0..n {
            let input = format!("g{}", (i + n - 1) % n);
            // alternate initial values so exactly one gate is excited
            let init = i % 2 == 1;
            b.gate(
                &format!("g{i}"),
                GateKind::Inverter,
                &[(input.as_str(), 1.0)],
                init,
            )
            .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn ring_oscillator_period() {
        // n-inverter ring with unit delays oscillates with period 2n.
        for n in [3usize, 5, 7] {
            let nl = inverter_ring(n);
            let mut sim = EventDrivenSim::new(&nl);
            let trace = sim.run(20.0 * n as f64, 100_000).unwrap();
            let s = nl.signal("g0").unwrap();
            assert_eq!(
                EventDrivenSim::steady_period(&trace, s, true),
                Some(2.0 * n as f64),
                "n={n}"
            );
        }
    }

    #[test]
    fn figure1_oscillator_trace_matches_example3() {
        let nl = crate::library::c_element_oscillator();
        let mut sim = EventDrivenSim::new(&nl);
        let trace = sim.run(17.0, 10_000).unwrap();
        let find = |name: &str, nth: usize| {
            let s = nl.signal(name).unwrap();
            trace
                .iter()
                .filter(|t| t.signal == s)
                .nth(nth)
                .map(|t| (t.time, t.value))
        };
        // Example 3's occurrence times.
        assert_eq!(find("e", 0), Some((0.0, false)));
        assert_eq!(find("f", 0), Some((3.0, false)));
        assert_eq!(find("a", 0), Some((2.0, true)));
        assert_eq!(find("b", 0), Some((4.0, true)));
        assert_eq!(find("c", 0), Some((6.0, true)));
        assert_eq!(find("a", 1), Some((8.0, false)));
        assert_eq!(find("b", 1), Some((7.0, false)));
        assert_eq!(find("c", 1), Some((11.0, false)));
        assert_eq!(find("a", 2), Some((13.0, true)));
        assert_eq!(find("b", 2), Some((12.0, true)));
        assert_eq!(find("c", 2), Some((16.0, true)));
    }

    #[test]
    fn figure1_steady_state_period_is_10() {
        let nl = crate::library::c_element_oscillator();
        let mut sim = EventDrivenSim::new(&nl);
        let trace = sim.run(400.0, 100_000).unwrap();
        for name in ["a", "b", "c"] {
            let s = nl.signal(name).unwrap();
            assert_eq!(
                EventDrivenSim::steady_period(&trace, s, true),
                Some(10.0),
                "{name}"
            );
        }
    }

    #[test]
    fn zero_delay_loop_hits_budget() {
        let mut b = Netlist::builder();
        b.gate("a", GateKind::Inverter, &[("a", 0.0)], false)
            .unwrap();
        let nl = b.build().unwrap();
        let mut sim = EventDrivenSim::new(&nl);
        assert!(matches!(
            sim.run(1.0, 100),
            Err(SimError::EventBudgetExhausted { .. })
        ));
    }

    #[test]
    fn stable_circuit_produces_no_events() {
        let mut b = Netlist::builder();
        b.input("x", true);
        b.gate("y", GateKind::Buffer, &[("x", 1.0)], true).unwrap();
        let nl = b.build().unwrap();
        let mut sim = EventDrivenSim::new(&nl);
        let trace = sim.run(100.0, 100).unwrap();
        assert!(trace.is_empty());
    }

    #[test]
    fn trace_recorder_captures_vcd() {
        let nl = crate::library::c_element_oscillator();
        let mut sim = EventDrivenSim::new(&nl);
        sim.enable_trace();
        let transitions = sim.run(17.0, 10_000).unwrap();
        let recorder = sim.take_trace().unwrap();
        // One recorded change per transition plus the initial snapshot.
        assert_eq!(
            recorder.changes().len(),
            transitions.len() + nl.signal_count()
        );
        let vcd = recorder.to_vcd_string();
        assert!(vcd.contains("$scope module netlist $end"));
        for s in nl.signals() {
            assert!(vcd.contains(&format!(" {} $end", nl.name(s))), "{vcd}");
        }
        // Example 3: a rises at t=2 → timestamp #2000 at 1ps resolution.
        assert!(vcd.contains("#2000"), "{vcd}");
    }

    #[test]
    fn run_is_restartable_and_deterministic() {
        let nl = crate::library::c_element_oscillator();
        let mut sim = EventDrivenSim::new(&nl);
        let first = sim.run(50.0, 100_000).unwrap();
        let second = sim.run(50.0, 100_000).unwrap();
        assert!(!first.is_empty());
        assert_eq!(first, second);
    }

    #[test]
    fn restart_reuses_queue_allocation() {
        let nl = crate::library::muller_ring(9, 1.0);
        let mut sim = EventDrivenSim::new(&nl);
        let cap_before = sim.queue.capacity();
        assert!(cap_before > 0, "queue is pre-sized to the fanout");
        let _ = sim.run(200.0, 1_000_000).unwrap();
        let _ = sim.run(200.0, 1_000_000).unwrap();
        // The heap may have grown past the pre-size during the first run,
        // but the second run must not have had to regrow it.
        let cap_mid = sim.queue.capacity();
        let _ = sim.run(200.0, 1_000_000).unwrap();
        assert_eq!(sim.queue.capacity(), cap_mid);
    }

    #[test]
    fn calendar_queue_replays_identical_trace() {
        for nl in [
            crate::library::c_element_oscillator(),
            crate::library::muller_ring(5, 1.0),
            inverter_ring(7),
        ] {
            let heap_trace = EventDrivenSim::new(&nl).run(300.0, 1_000_000).unwrap();
            let mut cal = EventDrivenSim::with_queue(&nl, QueueKind::Calendar);
            assert_eq!(cal.queue_backend(), "calendar");
            let cal_trace = cal.run(300.0, 1_000_000).unwrap();
            assert_eq!(heap_trace, cal_trace);
        }
    }

    #[test]
    fn reused_queue_replays_identically_across_netlists() {
        // One SimQueue cycled through different netlists gives the same
        // traces as fresh simulators, and once warmed by the largest
        // netlist it never regrows.
        let big = crate::library::muller_ring(9, 1.0);
        let small = crate::library::c_element_oscillator();
        let mut queue = SimQueue::new(QueueKind::Calendar);
        assert_eq!(queue.kind(), QueueKind::Calendar);
        for _ in 0..2 {
            for nl in [&big, &small] {
                let mut warm = EventDrivenSim::with_reused_queue(nl, queue);
                let got = warm.run(150.0, 1_000_000).unwrap();
                queue = warm.into_queue();
                let fresh = EventDrivenSim::with_queue(nl, QueueKind::Calendar)
                    .run(150.0, 1_000_000)
                    .unwrap();
                assert_eq!(got, fresh);
            }
        }
        let cap = queue.capacity();
        let mut warm = EventDrivenSim::with_reused_queue(&big, queue);
        let _ = warm.run(150.0, 1_000_000).unwrap();
        assert_eq!(warm.into_queue().capacity(), cap, "warm replay regrew");
    }

    #[test]
    fn trace_is_off_by_default_and_detachable() {
        let nl = crate::library::c_element_oscillator();
        let mut sim = EventDrivenSim::new(&nl);
        assert!(sim.trace().is_none());
        sim.enable_trace();
        assert!(sim.trace().is_some());
        let _ = sim.take_trace();
        assert!(sim.trace().is_none());
    }
}
