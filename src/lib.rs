//! # tsg — Performance Analysis Based on Timing Simulation
//!
//! A Rust reproduction of Nielsen & Kishinevsky, *"Performance Analysis Based
//! on Timing Simulation"*, 31st ACM/IEEE Design Automation Conference (DAC),
//! 1994, pp. 70–76.
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`core`] — the Timed Signal Graph model and the paper's O(b²m)
//!   timing-simulation cycle-time algorithm (Sections III–VII),
//! * [`baselines`] — the related-work comparators: simple-cycle enumeration,
//!   Karp, Howard, Lawler binary search, long-run simulation estimation,
//! * [`circuit`] — gate-level asynchronous circuits and an event-driven
//!   timing simulator (Section VIII),
//! * [`extract`] — Signal Graph extraction from speed-independent circuits
//!   (the TRASPEC step of Section VIII.B),
//! * [`serve`] — the long-running `tsg serve` analysis service: a
//!   newline-delimited JSON protocol answered in order by a persistent
//!   warm worker pool (one arena + pre-sized queues per worker),
//! * [`stg`] — `.g` Signal Transition Graph file I/O,
//! * [`gen`] — workload generators (Muller rings, pipelines, stacks, seeded
//!   random live graphs),
//! * [`graph`] — the underlying directed-graph algorithm substrate,
//! * [`sim`] — the shared event-simulation kernel: the monotone event
//!   queue with swappable storage backends (binary heap, calendar
//!   queue), VCD trace recording, and parallel batch execution that
//!   every simulator in the workspace runs on.
//!
//! # Quickstart
//!
//! Compute the cycle time of the paper's C-element oscillator (Figure 1):
//!
//! ```
//! use tsg::core::analysis::CycleTimeAnalysis;
//! use tsg::circuit::library;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tsg = library::c_element_oscillator_tsg();
//! let analysis = CycleTimeAnalysis::run(&tsg)?;
//! assert_eq!(analysis.cycle_time().as_f64(), 10.0);
//! # Ok(())
//! # }
//! ```

pub use tsg_baselines as baselines;
pub use tsg_circuit as circuit;
pub use tsg_core as core;
pub use tsg_extract as extract;
pub use tsg_gen as gen;
pub use tsg_graph as graph;
pub use tsg_serve as serve;
pub use tsg_sim as sim;
pub use tsg_stg as stg;
