//! Facade-level tests of the post-reproduction extensions: per-arc slack
//! analysis and the plain-data spec interchange form.

use proptest::prelude::*;

use tsg::core::analysis::slack::SlackAnalysis;
use tsg::core::analysis::CycleTimeAnalysis;
use tsg::core::spec::SignalGraphSpec;
use tsg::gen::{handshake_pipeline, random_live_tsg, ring, torus, PipelineConfig, RandomTsgConfig};

#[test]
fn torus_slack_isolates_the_slow_rings() {
    // Rows cost 10 per hop, columns 1: every row arc is critical, column
    // arcs have lots of slack.
    let sg = torus(3, 4, 10.0, 1.0);
    let sa = SlackAnalysis::run(&sg).unwrap();
    assert_eq!(sa.cycle_time(), 40.0);
    let mut critical = 0;
    let mut loose = 0;
    for a in sg.arc_ids() {
        let arc = sg.arc(a);
        let src = sg.label(arc.src()).to_string();
        let dst = sg.label(arc.dst()).to_string();
        let same_row = src.split('_').next() == dst.split('_').next();
        let s = sa.slack(a).unwrap();
        if same_row {
            assert_eq!(s, 0.0, "row arc {src}->{dst} must be critical");
            critical += 1;
        } else {
            assert!(s > 0.0, "column arc {src}->{dst} must have slack");
            loose += 1;
        }
    }
    assert_eq!(critical, 12);
    assert_eq!(loose, 12);
}

#[test]
fn balanced_torus_is_fully_critical() {
    let sg = torus(4, 4, 2.0, 2.0);
    let sa = SlackAnalysis::run(&sg).unwrap();
    assert!(sg.arc_ids().all(|a| sa.is_critical(a, 1e-9)));
}

#[test]
fn stack66_has_nontrivial_slack_profile() {
    let sg = tsg::gen::stack66();
    let sa = SlackAnalysis::run(&sg).unwrap();
    let critical = sa.critical_arcs(1e-9);
    assert!(!critical.is_empty());
    assert!(critical.len() < sg.arc_count());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Spec round-trip is lossless over every generator family.
    #[test]
    fn spec_roundtrip_everything(seed in 0u64..500, pick in 0usize..4) {
        let sg = match pick {
            0 => ring(4 + (seed % 8) as usize, 1 + (seed % 3) as usize, 2.0),
            1 => handshake_pipeline(1 + (seed % 5) as usize, PipelineConfig::default()),
            2 => torus(2 + (seed % 3) as usize, 2 + (seed % 4) as usize, 1.0, 3.0),
            _ => random_live_tsg(seed, RandomTsgConfig { with_prefix: true, ..Default::default() }),
        };
        let spec = SignalGraphSpec::from(&sg);
        let back = spec.build().unwrap();
        prop_assert_eq!(back.event_count(), sg.event_count());
        prop_assert_eq!(back.arc_count(), sg.arc_count());
        let t1 = CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64();
        let t2 = CycleTimeAnalysis::run(&back).unwrap().cycle_time().as_f64();
        prop_assert_eq!(t1, t2);
    }

    /// Slack values are consistent with the definition: stretching an arc
    /// by less than its slack never raises τ.
    #[test]
    fn slack_is_safe_margin(seed in 0u64..300) {
        let sg = random_live_tsg(seed, RandomTsgConfig::default());
        let sa = SlackAnalysis::run(&sg).unwrap();
        let tau = sa.cycle_time();
        // pick the first arc with strictly positive slack, if any
        let probe = sg.arc_ids().find(|&a| matches!(sa.slack(a), Some(s) if s > 0.5));
        if let Some(probe) = probe {
            let margin = sa.slack(probe).unwrap() - 0.25;
            let mut spec = SignalGraphSpec::from(&sg);
            spec.arcs[probe.index()].delay += margin;
            let stretched = spec.build().unwrap();
            let t2 = CycleTimeAnalysis::run(&stretched).unwrap().cycle_time().as_f64();
            prop_assert!((t2 - tau).abs() < 1e-9, "τ moved from {tau} to {t2}");
        }
    }

    /// Critical arcs are exactly those on maximum-ratio cycles, checked
    /// against enumeration on small graphs.
    #[test]
    fn critical_arcs_match_enumeration(seed in 0u64..300) {
        let cfg = RandomTsgConfig { events: 8, tokens: 2, chords: 6, max_delay: 7, with_prefix: false };
        let sg = random_live_tsg(seed, cfg);
        let sa = SlackAnalysis::run(&sg).unwrap();
        let inventory = tsg::baselines::CycleInventory::build(&sg, 100_000).unwrap();
        let tau = sa.cycle_time();
        let mut on_critical = vec![false; sg.arc_count()];
        for (arcs, len, eps) in &inventory.cycles {
            if (len - tau * *eps as f64).abs() < 1e-9 {
                for a in arcs {
                    on_critical[a.index()] = true;
                }
            }
        }
        for a in sg.arc_ids() {
            if sa.slack(a).is_some() {
                prop_assert_eq!(
                    sa.is_critical(a, 1e-9),
                    on_critical[a.index()],
                    "arc {} disagreement", a
                );
            }
        }
    }
}
