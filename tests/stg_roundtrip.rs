//! STG file format: round-trip properties across generated graphs.

use proptest::prelude::*;

use tsg::core::analysis::CycleTimeAnalysis;
use tsg::core::SignalGraph;
use tsg::stg::{parse_stg, write_stg, StgOptions};

/// Builds a polarity-labelled ring of `n` signals (each contributing a
/// rise and a fall event) with `tokens` marked arcs — expressible in `.g`.
fn transition_ring(n: usize, tokens: usize, delay: f64) -> SignalGraph {
    let mut b = SignalGraph::builder();
    let mut events = Vec::new();
    for i in 0..n {
        events.push(b.event(&format!("s{i}+")));
        events.push(b.event(&format!("s{i}-")));
    }
    let total = events.len();
    for i in 0..total {
        let next = (i + 1) % total;
        let marked = (i + 1) * tokens / total != i * tokens / total;
        if marked {
            b.marked_arc(events[i], events[next], delay);
        } else {
            b.arc(events[i], events[next], delay);
        }
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_preserves_structure_and_tau(
        n in 1usize..10,
        tokens in 1usize..4,
        delay in 1u32..9,
    ) {
        let sg = transition_ring(n, tokens.min(2 * n), f64::from(delay));
        let text = write_stg(&sg, "ring").unwrap();
        let back = parse_stg(&text, StgOptions::default()).unwrap();
        prop_assert_eq!(back.event_count(), sg.event_count());
        prop_assert_eq!(back.arc_count(), sg.arc_count());
        let t1 = CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64();
        let t2 = CycleTimeAnalysis::run(&back).unwrap().cycle_time().as_f64();
        prop_assert_eq!(t1, t2);
        // writing again is a fixed point
        prop_assert_eq!(write_stg(&back, "ring").unwrap(), text);
    }

    #[test]
    fn handshake_pipelines_roundtrip(stages in 1usize..8) {
        // Pipeline labels (r0+, a0+, …) carry polarities except the
        // environment pair; rename those for expressibility.
        let sg = tsg::gen::handshake_pipeline(stages, tsg::gen::PipelineConfig::default());
        let mut b = SignalGraph::builder();
        let ids: Vec<_> = sg
            .events()
            .map(|e| {
                let l = sg.label(e).to_string();
                let fixed = match l.as_str() {
                    "out" => "env+".to_owned(),
                    "in" => "env-".to_owned(),
                    other => other.to_owned(),
                };
                b.event(&fixed)
            })
            .collect();
        for a in sg.arc_ids() {
            let arc = sg.arc(a);
            let (s, d) = (ids[arc.src().index()], ids[arc.dst().index()]);
            if arc.is_marked() {
                b.marked_arc(s, d, arc.delay().get());
            } else {
                b.arc(s, d, arc.delay().get());
            }
        }
        let renamed = b.build().unwrap();
        let text = write_stg(&renamed, "pipeline").unwrap();
        let back = parse_stg(&text, StgOptions::default()).unwrap();
        let t1 = CycleTimeAnalysis::run(&renamed).unwrap().cycle_time().as_f64();
        let t2 = CycleTimeAnalysis::run(&back).unwrap().cycle_time().as_f64();
        prop_assert_eq!(t1, t2);
    }
}
