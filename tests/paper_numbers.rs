//! End-to-end verification of every headline number in the paper, through
//! the public facade crate.

use tsg::baselines;
use tsg::circuit::{library, EventDrivenSim};
use tsg::core::analysis::initiated::InitiatedSimulation;
use tsg::core::analysis::sim::TimingSimulation;
use tsg::core::analysis::CycleTimeAnalysis;
use tsg::core::Ratio;
use tsg::extract::{explore, extract, ExtractOptions};

/// Section II / Example 3: the full timing table of Figure 1.
#[test]
fn example3_full_table() {
    let sg = library::c_element_oscillator_tsg();
    let sim = TimingSimulation::run(&sg, 2);
    let expect = [
        ("e-", 0, 0.0),
        ("f-", 0, 3.0),
        ("a+", 0, 2.0),
        ("b+", 0, 4.0),
        ("c+", 0, 6.0),
        ("a-", 0, 8.0),
        ("b-", 0, 7.0),
        ("c-", 0, 11.0),
        ("a+", 1, 13.0),
        ("b+", 1, 12.0),
        ("c+", 1, 16.0),
    ];
    for (label, i, want) in expect {
        let e = sg.event_by_label(label).unwrap();
        assert_eq!(sim.time(e, i), Some(want), "{label}_{i}");
    }
}

/// Section II: the a+ average-occurrence-distance sequence 2, 6.5, 7.67, …
#[test]
fn section2_average_sequence() {
    let sg = library::c_element_oscillator_tsg();
    let sim = TimingSimulation::run(&sg, 6);
    let ap = sg.event_by_label("a+").unwrap();
    let seq: Vec<f64> = (0..6)
        .map(|i| sim.average_distance(ap, i).unwrap())
        .collect();
    let want = [2.0, 6.5, 23.0 / 3.0, 8.25, 8.6, 53.0 / 6.0];
    for (got, want) in seq.iter().zip(want) {
        assert!((got - want).abs() < 1e-12);
    }
}

/// The whole Section VIII.C pipeline: τ = 10 via border simulations, with
/// the per-border tables.
#[test]
fn section8c_cycle_time_and_tables() {
    let sg = library::c_element_oscillator_tsg();
    let analysis = CycleTimeAnalysis::run(&sg).unwrap();
    assert_eq!(analysis.cycle_time().as_f64(), 10.0);
    assert_eq!(analysis.border_events().len(), 2);
    let rec_a = &analysis.records()[0];
    assert_eq!(rec_a.distances, vec![(1, 10.0, 10.0), (2, 20.0, 10.0)]);
    let rec_b = &analysis.records()[1];
    assert_eq!(rec_b.distances, vec![(1, 8.0, 8.0), (2, 18.0, 9.0)]);
}

/// Example 6: enumeration gives τ = max{10, 8, 8, 6} = 10.
#[test]
fn example6_enumeration() {
    let sg = library::c_element_oscillator_tsg();
    let inv = baselines::CycleInventory::build(&sg, 100).unwrap();
    let mut lengths: Vec<f64> = inv.cycles.iter().map(|c| c.1).collect();
    lengths.sort_by(f64::total_cmp);
    assert_eq!(lengths, vec![6.0, 8.0, 8.0, 10.0]);
}

/// The netlist → extraction → analysis flow agrees with the hand-built
/// graph and with the gate-level event-driven simulation.
#[test]
fn figure1_three_way_agreement() {
    let netlist = library::c_element_oscillator();
    assert!(explore(&netlist, 100_000).is_semimodular());
    let extracted = extract(&netlist, ExtractOptions::default()).unwrap();
    let tau = CycleTimeAnalysis::run(&extracted).unwrap().cycle_time();
    assert_eq!(tau.as_f64(), 10.0);

    let mut des = EventDrivenSim::new(&netlist);
    let trace = des.run(500.0, 100_000).unwrap();
    for name in ["a", "b", "c"] {
        let s = netlist.signal(name).unwrap();
        assert_eq!(
            EventDrivenSim::steady_period(&trace, s, true),
            Some(10.0),
            "{name}"
        );
    }
}

/// Section VIII.D: the Muller ring, full fidelity.
#[test]
fn section8d_muller_ring() {
    let netlist = library::muller_ring(5, 1.0);
    assert!(explore(&netlist, 1_000_000).is_semimodular());
    let sg = extract(&netlist, ExtractOptions::default()).unwrap();

    let mut borders: Vec<String> = sg
        .border_events()
        .iter()
        .map(|&e| sg.label(e).to_string())
        .collect();
    borders.sort();
    assert_eq!(borders, vec!["s0+", "s1+", "s2+", "s4-"]);

    let s0 = sg.event_by_label("s0+").unwrap();
    let sim = InitiatedSimulation::run(&sg, s0, 10).unwrap();
    let times: Vec<f64> = (1..=10).map(|i| sim.time(s0, i).unwrap()).collect();
    assert_eq!(
        times,
        vec![6.0, 13.0, 20.0, 26.0, 33.0, 40.0, 46.0, 53.0, 60.0, 66.0]
    );
    // per-period distances 6,7,7,6,7,7,6,7,7 and averages → 20/3
    let analysis = CycleTimeAnalysis::run(&sg).unwrap();
    assert_eq!(analysis.cycle_time().exact(), Some(Ratio::new(20, 3)));
    assert_eq!(analysis.cycle_time().periods(), 3);

    // Gate-level DES agrees on the long-run average.
    let mut des = EventDrivenSim::new(&netlist);
    let trace = des.run(4000.0, 1_000_000).unwrap();
    let s = netlist.signal("s0").unwrap();
    let p = EventDrivenSim::average_period(&trace, s, true).unwrap();
    assert!((p - 20.0 / 3.0).abs() < 0.02, "DES period {p}");
}

/// Section VIII.B: the 66-event / 112-arc size point, all algorithms
/// agreeing.
#[test]
fn section8b_stack_consensus() {
    let sg = tsg::gen::stack66();
    assert_eq!((sg.event_count(), sg.arc_count()), (66, 112));
    let tau = CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64();
    assert_eq!(baselines::howard_cycle_time(&sg).unwrap().as_f64(), tau);
    assert_eq!(baselines::karp_cycle_time(&sg).unwrap().as_f64(), tau);
    assert_eq!(baselines::lawler_cycle_time(&sg, 60).unwrap().as_f64(), tau);
    assert_eq!(
        baselines::enumerate_cycle_time(&sg, 5_000_000)
            .unwrap()
            .unwrap()
            .as_f64(),
        tau
    );
}

/// The paper's erratum: VIII.C prints C2 as the critical cycle, but its own
/// Example 5 assigns C2 length 8 < 10. We assert the consistent reading.
#[test]
fn section8c_erratum_c1_is_critical() {
    let sg = library::c_element_oscillator_tsg();
    let analysis = CycleTimeAnalysis::run(&sg).unwrap();
    let cycle = sg.display_path(analysis.critical_cycle());
    assert_eq!(cycle, "a+ -3-> c+ -2-> a- -3-> c- -2*-> a+");
    // The cycle the paper's VIII.C text names has effective length 8:
    let inv = baselines::CycleInventory::build(&sg, 100).unwrap();
    let c2 = inv
        .cycles
        .iter()
        .find(|(arcs, _, _)| {
            let labels: Vec<String> = arcs
                .iter()
                .map(|&a| sg.label(sg.arc(a).src()).to_string())
                .collect();
            labels.contains(&"a+".to_owned()) && labels.contains(&"b-".to_owned())
        })
        .unwrap();
    assert_eq!(c2.1, 8.0);
}
