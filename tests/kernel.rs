//! The tsg-sim kernel, end to end: deterministic replay, parallel batch
//! execution, and cross-validation of the kernel-backed simulators
//! against the paper's exact cycle-time analysis on every generator
//! family.

use tsg::baselines;
use tsg::circuit::{library, EventDrivenSim};
use tsg::core::analysis::event_sim::EventSimulation;
use tsg::core::analysis::sim::TimingSimulation;
use tsg::core::analysis::CycleTimeAnalysis;
use tsg::core::SignalGraph;
use tsg::gen::{handshake_pipeline, random_live_tsg, ring, torus, PipelineConfig, RandomTsgConfig};
use tsg::sim::{BatchRunner, EventQueue, TraceRecorder};

/// Steady-state occurrence distance of a border event over the last
/// `span` periods of a kernel-backed TSG simulation. When `span` is a
/// multiple of the critical cycle's period count ε, this equals τ
/// exactly once the transient has died out (Proposition 2).
fn observed_period(sg: &SignalGraph, periods: u32, span: u32) -> f64 {
    let probe = sg.border_events()[0];
    let sim = EventSimulation::run(sg, periods);
    let t_start = sim
        .time(probe, periods - 1 - span)
        .expect("start occurrence");
    let t_end = sim.time(probe, periods - 1).expect("final occurrence");
    (t_end - t_start) / span as f64
}

/// Same seed ⇒ byte-identical transition stream, run after run.
#[test]
fn netlist_replay_is_deterministic() {
    for nl in [
        library::c_element_oscillator(),
        library::muller_ring(5, 1.0),
        library::inverter_ring(7, 3.0),
    ] {
        let t1 = EventDrivenSim::new(&nl).run(200.0, 1_000_000).unwrap();
        let t2 = EventDrivenSim::new(&nl).run(200.0, 1_000_000).unwrap();
        assert_eq!(t1, t2);
        assert!(!t1.is_empty());
    }
}

/// The kernel TSG simulation reproduces the period-synchronous reference
/// exactly, occurrence by occurrence, on every generator family.
#[test]
fn event_simulation_equals_synchronous_reference() {
    let graphs: Vec<SignalGraph> = vec![
        ring(24, 3, 2.0),
        torus(4, 5, 10.0, 1.0),
        handshake_pipeline(6, PipelineConfig::default()),
        tsg::gen::stack66(),
        random_live_tsg(11, RandomTsgConfig::default()),
        random_live_tsg(
            12,
            RandomTsgConfig {
                with_prefix: true,
                ..RandomTsgConfig::default()
            },
        ),
    ];
    for sg in &graphs {
        let periods = 6;
        let sync = TimingSimulation::run(sg, periods);
        let event = EventSimulation::run(sg, periods);
        for e in sg.events() {
            for p in 0..periods {
                assert_eq!(sync.time(e, p), event.time(e, p));
            }
        }
    }
}

/// Kernel-backed simulation agrees with the exact analysis: on rings and
/// tori the steady state is reached and the observed period equals τ to
/// floating-point accuracy; random live graphs converge within the
/// asymptotic tolerance of Section IV.C.
#[test]
fn kernel_simulation_cross_validates_analysis() {
    for (name, sg) in [
        ("ring(16,1)", ring(16, 1, 3.0)),
        ("ring(31,5)", ring(31, 5, 2.0)),
        ("torus(3,4)", torus(3, 4, 10.0, 1.0)),
        ("torus(5,5)", torus(5, 5, 2.0, 2.0)),
    ] {
        let tau = CycleTimeAnalysis::run(&sg).unwrap().cycle_time();
        // Averaging over a multiple of ε makes the steady-state slope
        // exact (fractional τ like 62/5 cycles within the ε window).
        let span = tau.periods() * 4;
        let got = observed_period(&sg, 64 + span, span);
        assert!(
            (got - tau.as_f64()).abs() <= 1e-9,
            "{name}: observed {got}, τ = {tau}"
        );
    }
    for seed in 0..12u64 {
        let sg = random_live_tsg(seed, RandomTsgConfig::default());
        let tau = CycleTimeAnalysis::run(&sg).unwrap().cycle_time();
        let span = tau.periods() * 8;
        let got = observed_period(&sg, 128 + span, span);
        assert!(
            (got - tau.as_f64()).abs() <= tau.as_f64() * 0.05 + 1e-9,
            "seed {seed}: observed {got}, τ = {tau}"
        );
    }
}

/// The batch runner executes ≥ 8 generated scenarios and returns the
/// same results at every thread count — simulation outcomes must never
/// depend on scheduling.
#[test]
fn batch_results_identical_across_thread_counts() {
    let scenarios: Vec<SignalGraph> = (0..12u64)
        .map(|seed| random_live_tsg(seed, RandomTsgConfig::default()))
        .collect();
    assert!(scenarios.len() >= 8);
    let reference: Vec<Vec<(u32, f64)>> = scenarios
        .iter()
        .map(|sg| {
            let sim = EventSimulation::run(sg, 8);
            sim.chronological(sg)
                .into_iter()
                .map(|(e, i, t)| (e.index() as u32 * 100 + i, t))
                .collect()
        })
        .collect();
    for threads in [1, 2, 4, 8] {
        let got = BatchRunner::with_threads(threads).run(&scenarios, |sg| {
            let sim = EventSimulation::run(sg, 8);
            sim.chronological(sg)
                .into_iter()
                .map(|(e, i, t)| (e.index() as u32 * 100 + i, t))
                .collect::<Vec<_>>()
        });
        assert_eq!(got, reference, "threads = {threads}");
    }
}

/// Batched long-run estimation through the public baselines API matches
/// the sequential loop exactly and approximates τ — approximates only,
/// because a finite averaging window is exactly the limitation the paper
/// holds against long-run estimation.
#[test]
fn batched_longrun_agrees_with_exact() {
    let scenarios: Vec<SignalGraph> = (1..=10).map(|k| ring(40, k, 2.0)).collect();
    let batch = baselines::longrun_estimate_batch(&scenarios, 96);
    let sequential: Vec<Option<f64>> = scenarios
        .iter()
        .map(|sg| baselines::longrun_estimate(sg, 96))
        .collect();
    assert_eq!(batch, sequential);
    for (sg, est) in scenarios.iter().zip(&batch) {
        let tau = CycleTimeAnalysis::run(sg).unwrap().cycle_time().as_f64();
        assert!(
            (est.unwrap() - tau).abs() <= tau * 0.02,
            "{} vs τ = {tau}",
            est.unwrap()
        );
    }
}

/// A traced netlist simulation dumps a well-formed VCD containing every
/// signal and the Example 3 occurrence times.
#[test]
fn traced_netlist_simulation_dumps_vcd() {
    let nl = library::c_element_oscillator();
    let mut sim = EventDrivenSim::new(&nl);
    sim.enable_trace();
    sim.run(17.0, 10_000).unwrap();
    let recorder = sim.take_trace().unwrap();
    let vcd = recorder.to_vcd_string();
    assert!(vcd.contains("$enddefinitions $end"));
    for s in nl.signals() {
        assert!(vcd.contains(&format!(" {} $end", nl.name(s))));
    }
    // a+ at t = 2 and c+ at t = 6 from Example 3, at 1ps resolution.
    assert!(vcd.contains("#2000"), "{vcd}");
    assert!(vcd.contains("#6000"), "{vcd}");
}

/// The queue's reject-at-enqueue contract holds through the facade.
#[test]
fn queue_rejects_nan_and_regression() {
    let mut q: EventQueue<u32> = EventQueue::new();
    assert!(q.try_schedule(f64::NAN, 1).is_err());
    assert!(q.try_schedule(f64::NEG_INFINITY, 1).is_err());
    q.schedule(5.0, 2);
    assert_eq!(q.pop().unwrap().payload, 2);
    assert!(q.try_schedule(4.0, 3).is_err(), "past is closed after pop");
}

/// TSG traces map polarity-labelled events onto per-signal wires.
#[test]
fn tsg_trace_uses_signal_wires() {
    let sg = library::c_element_oscillator_tsg();
    let sim = EventSimulation::run(&sg, 2);
    let mut recorder = TraceRecorder::new("osc");
    sim.record_trace(&sg, &mut recorder);
    // Signals a, b, c, e, f — not one wire per event.
    assert_eq!(recorder.signal_count(), 5);
    assert!(recorder.changes().len() >= sg.event_count());
}
