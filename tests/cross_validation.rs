//! Property-based cross-validation: on seeded random live Signal Graphs,
//! the paper's algorithm, the enumeration ground truth and every baseline
//! must produce the same cycle time, and the reported critical cycle must
//! witness it.

use proptest::prelude::*;

use tsg::baselines;
use tsg::core::analysis::cycle_time::cycle_ratio;
use tsg::core::analysis::CycleTimeAnalysis;
use tsg::core::marking::Marking;
use tsg::gen::{random_live_tsg, RandomTsgConfig};
use tsg::graph::cycles::is_simple_cycle;

fn config_strategy() -> impl Strategy<Value = RandomTsgConfig> {
    (2usize..16, 1usize..6, 0usize..24, 0u32..8, any::<bool>()).prop_map(
        |(events, tokens, chords, max_delay, with_prefix)| RandomTsgConfig {
            events,
            tokens: tokens.min(events),
            chords,
            max_delay,
            with_prefix,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The paper's algorithm equals exhaustive enumeration (exact ground
    /// truth), Howard, Karp and Lawler.
    #[test]
    fn all_algorithms_agree(seed in 0u64..10_000, cfg in config_strategy()) {
        let sg = random_live_tsg(seed, cfg);
        let paper = CycleTimeAnalysis::run(&sg).unwrap().cycle_time();
        if let Ok(Some(truth)) = baselines::enumerate_cycle_time(&sg, 200_000) {
            // exact rational comparison via cross multiplication
            prop_assert_eq!(
                paper.length() * truth.periods() as f64,
                truth.length() * paper.periods() as f64,
                "paper {} vs enumeration {}", paper, truth
            );
        }
        let howard = baselines::howard_cycle_time(&sg).unwrap();
        prop_assert!((howard.as_f64() - paper.as_f64()).abs() < 1e-6 * (1.0 + paper.as_f64()));
        let karp = baselines::karp_cycle_time(&sg).unwrap();
        prop_assert!((karp.as_f64() - paper.as_f64()).abs() < 1e-6 * (1.0 + paper.as_f64()));
        let lawler = baselines::lawler_cycle_time(&sg, 60).unwrap();
        prop_assert!((lawler.as_f64() - paper.as_f64()).abs() < 1e-6 * (1.0 + paper.as_f64()));
    }

    /// The reported critical cycle is a well-formed simple cycle whose
    /// effective length equals τ.
    #[test]
    fn critical_cycle_witnesses_tau(seed in 0u64..10_000, cfg in config_strategy()) {
        let sg = random_live_tsg(seed, cfg);
        let analysis = CycleTimeAnalysis::run(&sg).unwrap();
        let cycle = analysis.critical_cycle();
        prop_assert!(!cycle.is_empty());
        // valid cycle in the underlying digraph
        let edges: Vec<tsg::graph::EdgeId> =
            cycle.iter().map(|a| tsg::graph::EdgeId(a.0)).collect();
        prop_assert!(is_simple_cycle(sg.digraph(), &edges));
        // its ratio equals the cycle time (cross-multiplied)
        let ratio = cycle_ratio(&sg, cycle);
        let tau = analysis.cycle_time();
        prop_assert_eq!(
            ratio.length() * tau.periods() as f64,
            tau.length() * ratio.periods() as f64
        );
    }

    /// Scaling all delays by a constant scales τ by the same constant.
    #[test]
    fn delay_scaling_equivariance(seed in 0u64..10_000, k in 1u32..8) {
        let cfg = RandomTsgConfig::default();
        let sg = random_live_tsg(seed, cfg);
        let tau = CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64();

        // rebuild with delays multiplied by k
        let mut b = tsg::core::SignalGraph::builder();
        let ids: Vec<_> = sg
            .events()
            .map(|e| b.event_with(sg.label(e).clone(), sg.kind(e)))
            .collect();
        for a in sg.arc_ids() {
            let arc = sg.arc(a);
            let (s, d) = (ids[arc.src().index()], ids[arc.dst().index()]);
            let delay = arc.delay().get() * f64::from(k);
            if arc.is_marked() {
                b.marked_arc(s, d, delay);
            } else if arc.is_disengageable() {
                b.disengageable_arc(s, d, delay);
            } else {
                b.arc(s, d, delay);
            }
        }
        let scaled = b.build().unwrap();
        let tau2 = CycleTimeAnalysis::run(&scaled).unwrap().cycle_time().as_f64();
        prop_assert!((tau2 - tau * f64::from(k)).abs() < 1e-9 * (1.0 + tau2));
    }

    /// Firing one full period of the token game returns the cyclic marking
    /// to its initial value (Marked Graph invariant).
    #[test]
    fn token_game_period_invariance(seed in 0u64..10_000) {
        let cfg = RandomTsgConfig { with_prefix: true, ..RandomTsgConfig::default() };
        let sg = random_live_tsg(seed, cfg);
        let mut m = Marking::initial(&sg);
        let before: Vec<u32> = sg
            .arc_ids()
            .filter(|&a| {
                sg.is_repetitive(sg.arc(a).src()) && sg.is_repetitive(sg.arc(a).dst())
            })
            .map(|a| m.tokens(a))
            .collect();
        m.fire_period(&sg).unwrap();
        let after: Vec<u32> = sg
            .arc_ids()
            .filter(|&a| {
                sg.is_repetitive(sg.arc(a).src()) && sg.is_repetitive(sg.arc(a).dst())
            })
            .map(|a| m.tokens(a))
            .collect();
        prop_assert_eq!(before, after);
    }

    /// The long-run simulation estimate converges to τ (Figure 4's
    /// asymptote) within a generous horizon.
    #[test]
    fn longrun_converges(seed in 0u64..1_000) {
        let cfg = RandomTsgConfig { max_delay: 5, ..RandomTsgConfig::default() };
        let sg = random_live_tsg(seed, cfg);
        let tau = CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64();
        let est = baselines::longrun_estimate(&sg, 512).unwrap();
        // The estimate is an average over the second half of the horizon;
        // it converges like O(1/n) to τ from below or above.
        prop_assert!((est - tau).abs() <= tau * 0.05 + 1e-9, "est {est} vs tau {tau}");
    }
}
