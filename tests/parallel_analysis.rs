//! The parallel analysis pipeline against the sequential algorithm.
//!
//! `analyze_batch` and `run_parallel` must be *observably absent*: any
//! thread count, any arena reuse pattern, the same bits out as the
//! sequential `CycleTimeAnalysis::run`. These tests sweep the `tsg_gen`
//! generator families (including the seeded random live graphs) to pin
//! that down, plus the two kernel-backed simulators across queue
//! backends.

use proptest::prelude::*;
use tsg::core::analysis::wide::AnalysisArena;
use tsg::core::analysis::CycleTimeAnalysis;
use tsg::core::SignalGraph;
use tsg::gen::{random_live_tsg, ring, torus, RandomTsgConfig};
use tsg::sim::{BatchRunner, QueueKind};

fn assert_bit_identical(a: &CycleTimeAnalysis, b: &CycleTimeAnalysis, ctx: &str) {
    assert_eq!(
        a.cycle_time().as_f64().to_bits(),
        b.cycle_time().as_f64().to_bits(),
        "{ctx}: cycle time bits"
    );
    assert_eq!(
        a.cycle_time().periods(),
        b.cycle_time().periods(),
        "{ctx}: periods"
    );
    assert_eq!(a.critical_cycle(), b.critical_cycle(), "{ctx}: cycle");
    assert_eq!(a.critical_borders(), b.critical_borders(), "{ctx}: borders");
    let da: Vec<_> = a.records().iter().map(|r| r.distances.clone()).collect();
    let db: Vec<_> = b.records().iter().map(|r| r.distances.clone()).collect();
    assert_eq!(da, db, "{ctx}: distance tables");
}

/// The acceptance-criterion sweep: 64 random live graphs through
/// `analyze_batch` at several thread counts, bit-identical to the
/// sequential loop.
#[test]
fn analyze_batch_64_graph_sweep_is_bit_identical() {
    let graphs: Vec<SignalGraph> = (0..64u64)
        .map(|seed| random_live_tsg(seed, RandomTsgConfig::default()))
        .collect();
    let sequential: Vec<CycleTimeAnalysis> = graphs
        .iter()
        .map(|sg| CycleTimeAnalysis::run(sg).expect("generated graphs are live"))
        .collect();
    for threads in [1usize, 2, 8] {
        let batch = CycleTimeAnalysis::analyze_batch(&graphs, &BatchRunner::with_threads(threads));
        assert_eq!(batch.len(), graphs.len());
        for (i, (want, got)) in sequential.iter().zip(&batch).enumerate() {
            assert_bit_identical(
                want,
                got.as_ref().expect("live"),
                &format!("graph {i} at {threads} threads"),
            );
        }
    }
}

/// Mixed generator families through one shared arena: reuse across very
/// different graph shapes leaves no residue.
#[test]
fn arena_reuse_across_generator_families() {
    let graphs: Vec<SignalGraph> = vec![
        ring(24, 3, 2.0),
        torus(4, 5, 10.0, 1.0),
        tsg::gen::stack66(),
        ring(4, 1, 1.0),
        random_live_tsg(7, RandomTsgConfig::default()),
        torus(3, 3, 1.0, 5.0),
    ];
    let mut arena = AnalysisArena::new();
    for (i, sg) in graphs.iter().enumerate() {
        let reused = CycleTimeAnalysis::run_in(sg, None, &mut arena).unwrap();
        let fresh = CycleTimeAnalysis::run(sg).unwrap();
        assert_bit_identical(&fresh, &reused, &format!("graph {i}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `analyze_batch` ≡ sequential `run` on random live graphs, any
    /// batch size and thread count.
    #[test]
    fn analyze_batch_equals_sequential_run(
        seed in 0u64..10_000,
        count in 1usize..7,
        threads in 1usize..6,
    ) {
        let graphs: Vec<SignalGraph> = (0..count as u64)
            .map(|i| random_live_tsg(seed.wrapping_add(i), RandomTsgConfig::default()))
            .collect();
        let batch =
            CycleTimeAnalysis::analyze_batch(&graphs, &BatchRunner::with_threads(threads));
        for (i, (sg, got)) in graphs.iter().zip(&batch).enumerate() {
            let want = CycleTimeAnalysis::run(sg).unwrap();
            assert_bit_identical(&want, got.as_ref().unwrap(), &format!("graph {i}"));
        }
    }

    /// `run_parallel` ≡ `run` on random live graphs at any thread count.
    #[test]
    fn run_parallel_equals_run(seed in 0u64..10_000, threads in 1usize..9) {
        let sg = random_live_tsg(seed, RandomTsgConfig::default());
        let seq = CycleTimeAnalysis::run(&sg).unwrap();
        let par =
            CycleTimeAnalysis::run_parallel(&sg, &BatchRunner::with_threads(threads)).unwrap();
        assert_bit_identical(&seq, &par, "run_parallel");
    }

    /// The kernel event simulation is backend-invariant on random live
    /// graphs — heap and calendar produce identical occurrence times.
    #[test]
    fn event_simulation_is_backend_invariant(seed in 0u64..10_000, periods in 1u32..6) {
        use tsg::core::analysis::event_sim::EventSimulation;
        let sg = random_live_tsg(seed, RandomTsgConfig::default());
        let heap = EventSimulation::run_on(&sg, periods, QueueKind::Heap);
        let cal = EventSimulation::run_on(&sg, periods, QueueKind::Calendar);
        for e in sg.events() {
            for p in 0..periods {
                prop_assert_eq!(heap.time(e, p), cal.time(e, p));
            }
        }
    }
}
