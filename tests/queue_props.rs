//! Property tests for the kernel queue backends.
//!
//! The central claim of the swappable-backend design is that a backend
//! is a *performance* choice, never a *semantic* one: whatever the
//! storage, the pop stream is the `(time, seq)`-sorted order of the
//! pushed events. These properties drive both backends through random
//! interleaved push/pop schedules and compare them against each other
//! and against a sort oracle.
//!
//! Why a plain sort is a valid oracle even under interleaving: the
//! queue's monotonicity invariant (a push never precedes the last popped
//! time) means every already-popped event sorts at-or-before every
//! later-pushed one, so the concatenated pop stream of a legal schedule
//! is exactly the global sorted order.

use proptest::prelude::*;
use tsg::sim::{BinaryHeapQueue, CalendarQueue, EventQueue, QueueBackend};

/// A tiny deterministic generator (SplitMix64) so schedules derive from
/// one seed.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish f64 in `[0, hi)`.
    fn delay(&mut self, hi: f64) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64 * hi
    }
}

/// A sequence of `(time, payload)` pairs, pushed or popped.
type Stream = Vec<(f64, u32)>;

/// Drives one queue through the schedule derived from `seed`, returning
/// its push and full pop streams. `spread` shapes the delay
/// distribution (small → heavy ties, large → sparse times).
fn drive<B: QueueBackend<u32>>(
    mut q: EventQueue<u32, B>,
    seed: u64,
    ops: usize,
    spread: f64,
) -> (Stream, Stream) {
    let mut rng = Mix(seed);
    let mut pushed = Vec::new();
    let mut popped = Vec::new();
    let mut id: u32 = 0;
    for _ in 0..ops {
        if !rng.next().is_multiple_of(3) {
            // Quantize so exact ties actually occur.
            let delay = (rng.delay(spread) * 4.0).round() / 4.0;
            let time = q.now() + delay;
            q.schedule(time, id);
            pushed.push((time, id));
            id += 1;
        } else if let Some(ev) = q.pop() {
            popped.push((ev.time, ev.payload));
        }
    }
    while let Some(ev) = q.pop() {
        popped.push((ev.time, ev.payload));
    }
    (pushed, popped)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both backends equal the stable-sort oracle on random interleaved
    /// schedules.
    #[test]
    fn pop_order_matches_sort_oracle(
        seed in 0u64..1_000_000,
        ops in 1usize..500,
        spread in 1usize..40,
    ) {
        let spread = spread as f64 * 0.25;
        let (pushed_h, popped_h) = drive(EventQueue::new(), seed, ops, spread);
        let (pushed_c, popped_c) =
            drive(EventQueue::with_backend(CalendarQueue::new()), seed, ops, spread);

        // Identical schedules were generated for both backends...
        prop_assert_eq!(&pushed_h, &pushed_c);
        // ...and the oracle: stable sort by time (push order is id order,
        // which is seq order, so a stable sort encodes the tie-break).
        let mut oracle = pushed_h.clone();
        oracle.sort_by(|a, b| a.0.total_cmp(&b.0));
        prop_assert_eq!(&popped_h, &oracle, "heap vs oracle (seed {})", seed);
        prop_assert_eq!(&popped_c, &oracle, "calendar vs oracle (seed {})", seed);
    }

    /// A calendar tuned with a wildly wrong width hint still pops the
    /// oracle order (width is performance-only).
    #[test]
    fn calendar_width_hint_never_changes_semantics(
        seed in 0u64..100_000,
        ops in 1usize..200,
        width_exp in 0usize..7,
    ) {
        let width = 10f64.powi(width_exp as i32 - 3); // 1e-3 .. 1e3
        let (pushed, popped) =
            drive(EventQueue::with_backend(CalendarQueue::with_width(width)), seed, ops, 5.0);
        let mut oracle = pushed;
        oracle.sort_by(|a, b| a.0.total_cmp(&b.0));
        prop_assert_eq!(popped, oracle);
    }

    /// `clear` + reuse behaves like a fresh queue on both backends.
    #[test]
    fn cleared_queue_replays_like_fresh(seed in 0u64..100_000, ops in 1usize..150) {
        let mut heap = EventQueue::<u32>::with_capacity(64);
        let mut cal = EventQueue::with_backend(CalendarQueue::new());
        // Warm both with one schedule, then clear.
        let _ = drive_into(&mut heap, seed ^ 0xABCD, ops);
        let _ = drive_into(&mut cal, seed ^ 0xABCD, ops);
        heap.clear();
        cal.clear();
        // A cleared queue must replay exactly like a fresh one.
        let fresh = drive(EventQueue::<u32>::new(), seed, ops, 3.0).1;
        let h = drive_into(&mut heap, seed, ops);
        let c = drive_into(&mut cal, seed, ops);
        prop_assert_eq!(&h, &fresh);
        prop_assert_eq!(&c, &fresh);
    }
}

/// Drives one *backend* directly (below the [`EventQueue`] wrapper)
/// through a contract-legal schedule that may start in negative time:
/// every push is at or after the last popped time, quantized to `step`
/// so exact ties occur even at sub-picosecond resolution.
fn drive_backend<B: QueueBackend<u32>>(
    backend: &mut B,
    seed: u64,
    ops: usize,
    start: f64,
    step: f64,
) -> (Stream, Stream) {
    let mut rng = Mix(seed);
    let mut pushed = Vec::new();
    let mut popped = Vec::new();
    let mut floor = start; // last popped time; `start` before the first pop
    let mut seq = 0u64;
    let mut id: u32 = 0;
    for _ in 0..ops {
        if !rng.next().is_multiple_of(3) {
            let delay = (rng.delay(6.0) / step).round() * step;
            let time = floor + delay;
            seq += 1;
            backend.push(time, seq, id);
            pushed.push((time, id));
            id += 1;
        } else if let Some(ev) = backend.pop_min() {
            floor = ev.time;
            popped.push((ev.time, ev.payload));
        }
    }
    while let Some(ev) = backend.pop_min() {
        popped.push((ev.time, ev.payload));
    }
    (pushed, popped)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Negative and sub-picosecond schedules pop bit-identically on both
    /// backends and match the sort oracle. This is the regression net
    /// for the calendar queue's old truncating `day_of`, which aliased
    /// every negative-time event with day 0.
    #[test]
    fn backends_agree_on_negative_and_subpicosecond_times(
        seed in 0u64..1_000_000,
        ops in 1usize..400,
        start_units in 0usize..80,
        step_exp in 0usize..5,
    ) {
        // Schedules begin as far as 200 time units before zero, and tie
        // quantization goes down to 1e-4 units (a tenth of a picosecond
        // at the VCD writer's 1000-stamps-per-unit scale).
        let start = -(start_units as f64) * 2.5;
        let step = 10f64.powi(-(step_exp as i32));
        let mut heap = BinaryHeapQueue::new();
        let mut cal = CalendarQueue::new();
        let (pushed_h, popped_h) = drive_backend(&mut heap, seed, ops, start, step);
        let (pushed_c, popped_c) = drive_backend(&mut cal, seed, ops, start, step);
        prop_assert_eq!(&pushed_h, &pushed_c);
        let mut oracle = pushed_h.clone();
        oracle.sort_by(|a, b| a.0.total_cmp(&b.0));
        prop_assert_eq!(&popped_h, &oracle, "heap vs oracle (seed {})", seed);
        prop_assert_eq!(&popped_c, &oracle, "calendar vs oracle (seed {})", seed);
    }

    /// A width hint is performance-only in negative time too — including
    /// widths far larger than the whole schedule span, where every event
    /// lands in day -1 or 0.
    #[test]
    fn calendar_width_hint_is_semantics_free_below_zero(
        seed in 0u64..100_000,
        ops in 1usize..200,
        width_exp in 0usize..7,
    ) {
        let width = 10f64.powi(width_exp as i32 - 3); // 1e-3 .. 1e3
        let mut cal = CalendarQueue::with_width(width);
        let (pushed, popped) = drive_backend(&mut cal, seed, ops, -50.0, 0.25);
        let mut oracle = pushed;
        oracle.sort_by(|a, b| a.0.total_cmp(&b.0));
        prop_assert_eq!(popped, oracle);
    }
}

/// Like [`drive`] but over an existing queue (for clear/reuse tests).
fn drive_into<B: QueueBackend<u32>>(
    q: &mut EventQueue<u32, B>,
    seed: u64,
    ops: usize,
) -> Vec<(f64, u32)> {
    let mut rng = Mix(seed);
    let mut popped = Vec::new();
    let mut id: u32 = 0;
    for _ in 0..ops {
        if !rng.next().is_multiple_of(3) {
            let delay = (rng.delay(3.0) * 4.0).round() / 4.0;
            q.schedule(q.now() + delay, id);
            id += 1;
        } else if let Some(ev) = q.pop() {
            popped.push((ev.time, ev.payload));
        }
    }
    while let Some(ev) = q.pop() {
        popped.push((ev.time, ev.payload));
    }
    popped
}
