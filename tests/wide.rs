//! The lane-batched wide kernel against the scalar reference engine.
//!
//! The correctness bar of PR 5: everything the analysis reports —
//! cycle-time bits, critical cycle (i.e. the backtracked parents),
//! critical borders, per-border distance tables, and every cell of every
//! lane's time matrix — must be **bit-identical** between the lockstep
//! SIMD-friendly `WideArena` kernel (what `CycleTimeAnalysis::run` now
//! executes) and the pre-wide scalar engine (kept as
//! `CycleTimeAnalysis::run_scalar`). The properties sweep every
//! `tsg_gen` generator family, random edit scripts through
//! `AnalysisSession`, and every thread count of the lane-chunked
//! `run_parallel`.

use proptest::prelude::*;
use tsg::core::analysis::session::AnalysisSession;
use tsg::core::analysis::CycleTimeAnalysis;
use tsg::core::{ArcId, SignalGraph};
use tsg::gen::{handshake_pipeline, random_live_tsg, ring, torus, PipelineConfig, RandomTsgConfig};
use tsg::sim::BatchRunner;
use tsg_bench::{assert_analyses_identical, assert_wide_matches_scalar};

/// One generated graph per `(family, seed)` pair — the same family mix
/// the incremental-session properties use.
fn graph(family: usize, seed: u64) -> SignalGraph {
    match family % 4 {
        0 => ring(4 + (seed % 29) as usize, 1 + (seed % 5) as usize, 1.5),
        1 => torus(
            2 + (seed % 3) as usize,
            2 + (seed / 3 % 4) as usize,
            2.0,
            3.0,
        ),
        2 => handshake_pipeline(
            1 + (seed % 5) as usize,
            PipelineConfig {
                req_delay: 2.0,
                ack_delay: 1.0,
                coupling_delay: 1.0 + (seed % 3) as f64,
            },
        ),
        _ => random_live_tsg(seed, RandomTsgConfig::default()),
    }
}

/// A deterministic delay-edit script striding through the arcs.
fn script(sg: &SignalGraph, seed: u64, count: usize) -> Vec<(ArcId, f64)> {
    let m = sg.arc_count() as u64;
    (0..count as u64)
        .map(|i| {
            let k = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i * 41);
            (
                ArcId((k % m) as u32),
                [0.0, 0.5, 1.0, 2.5, 4.0, 7.25][(k / m % 6) as usize],
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance criterion: `run` (wide) ≡ `run_scalar` on every
    /// generator family — analyses and raw time matrices alike (the
    /// shared gate from `tsg_bench`, the same one the bench targets
    /// run before timing anything).
    #[test]
    fn wide_equals_scalar_across_families(family in 0usize..4, seed in 0u64..10_000) {
        let sg = graph(family, seed);
        assert_wide_matches_scalar(&sg, &format!("family {family} seed {seed}"));
    }

    /// Random edit scripts through an `AnalysisSession` (whose warm
    /// state is now the wide matrix): every step bit-identical to a
    /// from-scratch scalar analysis of the edited graph.
    #[test]
    fn session_edits_match_the_scalar_engine(
        family in 0usize..4,
        seed in 0u64..10_000,
        edits in 1usize..8,
    ) {
        let sg = graph(family, seed);
        let mut session = AnalysisSession::open(sg).expect("live");
        for (step, (arc, delay)) in script(session.graph(), seed, edits).into_iter().enumerate() {
            session.edit_delay(arc, delay).unwrap();
            let scalar = CycleTimeAnalysis::run_scalar(session.graph()).expect("stays live");
            assert_analyses_identical(
                &scalar,
                session.analysis(),
                &format!("family {family} seed {seed} step {step}"),
            );
        }
    }

    /// Thread-count invariance of the lane-chunked `run_parallel`: any
    /// chunking of the lanes produces the bits of the sequential wide
    /// run — and hence of the scalar engine.
    #[test]
    fn lane_chunked_run_parallel_is_thread_count_invariant(
        family in 0usize..4,
        seed in 0u64..10_000,
        threads in 1usize..9,
    ) {
        let sg = graph(family, seed);
        let scalar = CycleTimeAnalysis::run_scalar(&sg).expect("live");
        let par = CycleTimeAnalysis::run_parallel(&sg, &BatchRunner::with_threads(threads))
            .expect("live");
        assert_analyses_identical(&scalar, &par, &format!("family {family} seed {seed} x{threads}"));
    }
}

/// A deterministic soak per family: 32 edits on one session, wide vs
/// scalar verified at every step (catches drift that only accumulates
/// over many resumed lockstep rows).
#[test]
fn long_wide_session_soak_per_family() {
    for family in 0..4usize {
        let mut session = AnalysisSession::open(graph(family, 11)).expect("live");
        for (step, (arc, delay)) in script(session.graph(), 11, 32).into_iter().enumerate() {
            session.edit_delay(arc, delay).unwrap();
            let scalar = CycleTimeAnalysis::run_scalar(session.graph()).expect("live");
            assert_analyses_identical(
                &scalar,
                session.analysis(),
                &format!("family {family} step {step}"),
            );
        }
    }
}

/// The tracked bench workloads of the `wide-vs-scalar` scenario are
/// themselves property-checked here, so the bench binary's assertion
/// never fires first in CI.
#[test]
fn tracked_bench_workloads_are_bit_identical() {
    for (name, sg) in tsg_bench::wide_scenarios() {
        assert_wide_matches_scalar(&sg, &name);
    }
}
