//! The lane-batched wide kernel against the scalar reference engine.
//!
//! The correctness bar of PR 5: everything the analysis reports —
//! cycle-time bits, critical cycle (i.e. the backtracked parents),
//! critical borders, per-border distance tables, and every cell of every
//! lane's time matrix — must be **bit-identical** between the lockstep
//! SIMD-friendly `WideArena` kernel (what `CycleTimeAnalysis::run` now
//! executes) and the pre-wide scalar engine (kept as
//! `CycleTimeAnalysis::run_scalar`). The properties sweep every
//! `tsg_gen` generator family, random edit scripts through
//! `AnalysisSession`, and every thread count of the lane-chunked
//! `run_parallel`.
//!
//! PR 6 widens the bar to the explicit-SIMD backends: every backend
//! the CPU offers (portable always, SSE2/AVX2 when detected) must
//! produce the same bits as `run_scalar` — including odd lane counts
//! that force the masked remainder paths, and sessions resumed
//! mid-matrix with the kernel pinned per backend.
//!
//! PR 8 adds structural edits to the mix: interleaved pipeline-stage
//! splits and delay nudges applied through
//! `AnalysisSession::edit_structure` remap the warm lanes onto the
//! edited border set, and each batch must leave the session
//! bit-identical to a from-scratch scalar analysis — on every backend.
//!
//! PR 9 adds the scenario axis: a `ScenarioSet` of `s` delay
//! reweightings (derated corners or seeded samples) widens the lane
//! matrix to `b × s`, and every scenario lane of one lockstep sweep
//! must hold the exact bits of a from-scratch scalar analysis of the
//! per-scenario reweighted graph — across every generator family,
//! every backend, odd `b × s` remainder shapes, and any thread count.

use proptest::prelude::*;
use tsg::core::analysis::session::AnalysisSession;
use tsg::core::analysis::wide::AnalysisArena;
use tsg::core::analysis::{Corner, CycleTimeAnalysis, ScenarioSet};
use tsg::core::{ArcId, SignalGraph};
use tsg::gen::{handshake_pipeline, random_live_tsg, ring, torus, PipelineConfig, RandomTsgConfig};
use tsg::sim::BatchRunner;
use tsg_bench::{
    assert_analyses_identical, assert_backends_match, assert_scenarios_match_scalar,
    assert_wide_matches_scalar, available_backends, structural_edit_script,
};

/// A scenario set over `sg`'s arcs: corner sets of 1–3 corners for
/// even `pick`, seeded sample sets of 1–5 lanes otherwise.
fn scenario_set(sg: &SignalGraph, pick: u64) -> ScenarioSet {
    const CORNERS: [Corner; 3] = [Corner::Min, Corner::Typ, Corner::Max];
    let slots = sg.arc_count();
    if pick.is_multiple_of(2) {
        let count = 1 + (pick / 2 % 3) as usize;
        let derate = [5.0, 10.0, 25.0][(pick / 7 % 3) as usize];
        ScenarioSet::corners(derate, &CORNERS[..count], slots).expect("non-empty corner list")
    } else {
        let count = 1 + (pick / 2 % 5) as usize;
        ScenarioSet::samples(count, pick, 10.0, slots).expect("non-zero sample count")
    }
}

/// One generated graph per `(family, seed)` pair — the same family mix
/// the incremental-session properties use.
fn graph(family: usize, seed: u64) -> SignalGraph {
    match family % 4 {
        0 => ring(5 + (seed % 28) as usize, 1 + (seed % 5) as usize, 1.5),
        1 => torus(
            2 + (seed % 3) as usize,
            2 + (seed / 3 % 4) as usize,
            2.0,
            3.0,
        ),
        2 => handshake_pipeline(
            1 + (seed % 5) as usize,
            PipelineConfig {
                req_delay: 2.0,
                ack_delay: 1.0,
                coupling_delay: 1.0 + (seed % 3) as f64,
            },
        ),
        _ => random_live_tsg(seed, RandomTsgConfig::default()),
    }
}

/// A deterministic delay-edit script striding through the arcs.
fn script(sg: &SignalGraph, seed: u64, count: usize) -> Vec<(ArcId, f64)> {
    let m = sg.arc_count() as u64;
    (0..count as u64)
        .map(|i| {
            let k = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i * 41);
            (
                ArcId((k % m) as u32),
                [0.0, 0.5, 1.0, 2.5, 4.0, 7.25][(k / m % 6) as usize],
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance criterion: `run` (wide) ≡ `run_scalar` on every
    /// generator family — analyses and raw time matrices alike (the
    /// shared gate from `tsg_bench`, the same one the bench targets
    /// run before timing anything).
    #[test]
    fn wide_equals_scalar_across_families(family in 0usize..4, seed in 0u64..10_000) {
        let sg = graph(family, seed);
        assert_wide_matches_scalar(&sg, &format!("family {family} seed {seed}"));
    }

    /// Random edit scripts through an `AnalysisSession` (whose warm
    /// state is now the wide matrix): every step bit-identical to a
    /// from-scratch scalar analysis of the edited graph.
    #[test]
    fn session_edits_match_the_scalar_engine(
        family in 0usize..4,
        seed in 0u64..10_000,
        edits in 1usize..8,
    ) {
        let sg = graph(family, seed);
        let mut session = AnalysisSession::open(sg).expect("live");
        for (step, (arc, delay)) in script(session.graph(), seed, edits).into_iter().enumerate() {
            session.edit_delay(arc, delay).unwrap();
            let scalar = CycleTimeAnalysis::run_scalar(session.graph()).expect("stays live");
            assert_analyses_identical(
                &scalar,
                session.analysis(),
                &format!("family {family} seed {seed} step {step}"),
            );
        }
    }

    /// Every explicit kernel backend this CPU offers (portable always;
    /// SSE2/AVX2 when detected) ≡ `run_scalar` on every generator
    /// family — analyses bit-identical, and every SIMD backend's lane
    /// matrix cell-identical to the portable loop's.
    #[test]
    fn every_backend_equals_scalar_across_families(family in 0usize..4, seed in 0u64..10_000) {
        let sg = graph(family, seed);
        assert_backends_match(&sg, &format!("family {family} seed {seed}"));
    }

    /// Odd lane counts force the remainder paths (AVX2 maskload /
    /// maskstore tails, the SSE2 scalar lane): rings with b ∈ {1, 3,
    /// 5, 7} tokens give exactly b lanes, never a multiple of the
    /// vector width.
    #[test]
    fn odd_lane_counts_exercise_the_masked_remainders(
        bi in 0usize..4,
        seed in 0u64..10_000,
    ) {
        let b = [1usize, 3, 5, 7][bi];
        let n = b + 1 + (seed % 40) as usize;
        let sg = ring(n, b, 1.5);
        assert_backends_match(&sg, &format!("ring n={n} b={b} seed {seed}"));
    }

    /// Random edit scripts on a session pinned to each backend: every
    /// resume recomputes only the rows below the edit, so the matrix
    /// the SIMD kernel continues from is the portable/scalar one —
    /// every step must stay bit-identical to a from-scratch scalar
    /// analysis.
    #[test]
    fn session_edits_resume_mid_matrix_on_every_backend(
        family in 0usize..4,
        seed in 0u64..10_000,
        edits in 1usize..6,
    ) {
        for backend in available_backends() {
            let sg = graph(family, seed);
            let mut session = AnalysisSession::open_with_kernel(sg, backend).expect("live");
            for (step, (arc, delay)) in
                script(session.graph(), seed, edits).into_iter().enumerate()
            {
                session.edit_delay(arc, delay).unwrap();
                let scalar = CycleTimeAnalysis::run_scalar(session.graph()).expect("stays live");
                assert_analyses_identical(
                    &scalar,
                    session.analysis(),
                    &format!("family {family} seed {seed} step {step} [{}]", backend.name()),
                );
            }
        }
    }

    /// Interleaved structural + delay scripts on a session pinned to
    /// each backend: pipeline-stage splits grow the event set (and can
    /// grow or shuffle the border set, forcing a lane remap of the warm
    /// wide matrix), delay nudges dirty individual rows — after every
    /// batch the resumed state must hold the exact bits of a
    /// from-scratch scalar analysis of the edited graph.
    #[test]
    fn structural_scripts_resume_on_every_backend(
        family in 0usize..4,
        seed in 0u64..10_000,
        batches in 1usize..6,
    ) {
        for backend in available_backends() {
            let sg = graph(family, seed);
            let script = structural_edit_script(&sg, batches);
            let mut session = AnalysisSession::open_with_kernel(sg, backend).expect("live");
            for (step, batch) in script.iter().enumerate() {
                session.edit_structure(batch).unwrap();
                let scalar = CycleTimeAnalysis::run_scalar(session.graph()).expect("stays live");
                assert_analyses_identical(
                    &scalar,
                    session.analysis(),
                    &format!("family {family} seed {seed} batch {step} [{}]", backend.name()),
                );
            }
        }
    }

    /// Thread-count invariance of the lane-chunked `run_parallel`: any
    /// chunking of the lanes produces the bits of the sequential wide
    /// run — and hence of the scalar engine.
    #[test]
    fn lane_chunked_run_parallel_is_thread_count_invariant(
        family in 0usize..4,
        seed in 0u64..10_000,
        threads in 1usize..9,
    ) {
        let sg = graph(family, seed);
        let scalar = CycleTimeAnalysis::run_scalar(&sg).expect("live");
        let par = CycleTimeAnalysis::run_parallel(&sg, &BatchRunner::with_threads(threads))
            .expect("live");
        assert_analyses_identical(&scalar, &par, &format!("family {family} seed {seed} x{threads}"));
    }

    /// The scenario acceptance criterion: one lockstep sweep over a
    /// corner or sample set ≡ a scalar re-run per reweighted graph, on
    /// every generator family (the shared gate from `tsg_bench`, the
    /// same one the `corner_sweep` bench runs before timing anything).
    #[test]
    fn scenario_lanes_equal_scalar_across_families(
        family in 0usize..4,
        seed in 0u64..10_000,
        pick in 0u64..1_000,
    ) {
        let sg = graph(family, seed);
        let set = scenario_set(&sg, pick);
        assert_scenarios_match_scalar(&sg, &set, &format!("family {family} seed {seed} pick {pick}"));
    }

    /// Odd `b × s` lane products force the masked remainder paths of
    /// every backend: rings with b ∈ {1, 3, 5, 7} tokens crossed with
    /// s ∈ {1, 3, 5} scenarios give lane counts like 3, 15, 35 — never
    /// a multiple of the vector width. Each backend's sweep is pinned
    /// through its own arena and checked lane-by-lane against the
    /// scalar engine on the reweighted graph.
    #[test]
    fn odd_scenario_lane_products_on_every_backend(
        bi in 0usize..4,
        si in 0usize..3,
        seed in 0u64..10_000,
    ) {
        let b = [1usize, 3, 5, 7][bi];
        let n = b + 1 + (seed % 40) as usize;
        let sg = ring(n, b, 1.5);
        let s = [1usize, 3, 5][si];
        let set = ScenarioSet::samples(s, seed, 10.0, sg.arc_count()).expect("s >= 1");
        for backend in available_backends() {
            let mut arena = AnalysisArena::with_kernel(backend);
            let swept = CycleTimeAnalysis::run_scenarios_in(&sg, &set, None, &mut arena, None)
                .expect("rings stay live");
            for j in 0..set.len() {
                let scalar = CycleTimeAnalysis::run_scalar(&set.reweighted(&sg, j))
                    .expect("reweighting keeps the ring live");
                assert_analyses_identical(
                    &scalar,
                    swept.analysis(j),
                    &format!("ring n={n} b={b} s={s} seed {seed} [{}] lane {j}", backend.name()),
                );
            }
        }
    }

    /// Thread-count invariance of the scenario-chunked parallel sweep:
    /// any split of the scenario axis across workers produces the bits
    /// of the sequential sweep — and hence of the scalar engine.
    #[test]
    fn scenario_parallel_sweep_is_thread_count_invariant(
        family in 0usize..4,
        seed in 0u64..10_000,
        pick in 0u64..1_000,
        threads in 1usize..9,
    ) {
        use tsg::core::analysis::KernelBackend;
        let sg = graph(family, seed);
        let set = scenario_set(&sg, pick);
        let seq = CycleTimeAnalysis::run_scenarios(&sg, &set).expect("live");
        let par = CycleTimeAnalysis::run_scenarios_parallel_on(
            &sg,
            &set,
            &BatchRunner::with_threads(threads),
            KernelBackend::Auto,
            None,
        )
        .expect("live");
        prop_assert_eq!(seq.len(), par.len());
        for j in 0..set.len() {
            assert_analyses_identical(
                seq.analysis(j),
                par.analysis(j),
                &format!("family {family} seed {seed} pick {pick} x{threads} lane {j}"),
            );
        }
    }
}

/// A deterministic soak per family: 32 edits on one session, wide vs
/// scalar verified at every step (catches drift that only accumulates
/// over many resumed lockstep rows).
#[test]
fn long_wide_session_soak_per_family() {
    for family in 0..4usize {
        let mut session = AnalysisSession::open(graph(family, 11)).expect("live");
        for (step, (arc, delay)) in script(session.graph(), 11, 32).into_iter().enumerate() {
            session.edit_delay(arc, delay).unwrap();
            let scalar = CycleTimeAnalysis::run_scalar(session.graph()).expect("live");
            assert_analyses_identical(
                &scalar,
                session.analysis(),
                &format!("family {family} step {step}"),
            );
        }
    }
}

/// A deterministic structural soak per family and backend: 16
/// interleaved split/nudge batches on one session, so the wide matrix
/// grows through repeated lane remaps and the accumulated state is
/// verified against the scalar engine at every step.
#[test]
fn long_structural_soak_per_family_on_every_backend() {
    for family in 0..4usize {
        for backend in available_backends() {
            let sg = graph(family, 11);
            let script = structural_edit_script(&sg, 16);
            let mut session = AnalysisSession::open_with_kernel(sg, backend).expect("live");
            for (step, batch) in script.iter().enumerate() {
                session.edit_structure(batch).unwrap();
                let scalar = CycleTimeAnalysis::run_scalar(session.graph()).expect("live");
                assert_analyses_identical(
                    &scalar,
                    session.analysis(),
                    &format!("family {family} step {step} [{}]", backend.name()),
                );
            }
        }
    }
}

/// The tracked bench workloads of the `wide-vs-scalar` scenario are
/// themselves property-checked here, so the bench binary's assertion
/// never fires first in CI.
#[test]
fn tracked_bench_workloads_are_bit_identical() {
    for (name, sg) in tsg_bench::wide_scenarios() {
        assert_wide_matches_scalar(&sg, &name);
    }
}

/// Cancellation bit-safety of the wide kernel (PR 7): a run aborted
/// mid-matrix reports its partial progress and leaves the arena fully
/// reusable — the next uncancelled run in the *same* arena overwrites
/// the partial matrix and produces the exact bits of a fresh analysis.
#[test]
fn cancelled_run_leaves_arena_bit_identical_on_rerun() {
    use tsg::core::analysis::wide::AnalysisArena;
    use tsg::core::analysis::AnalysisError;
    use tsg::sim::{CancelKind, CancelToken};
    for family in 0..4usize {
        let sg = graph(family, 11);
        let full = CycleTimeAnalysis::run(&sg).expect("live");
        let mut arena = AnalysisArena::new();
        let token = CancelToken::cancel_after_checks(1);
        match CycleTimeAnalysis::run_in_with_cancel(&sg, None, &mut arena, Some(&token)) {
            Err(AnalysisError::Cancelled {
                kind,
                rows_done,
                rows_total,
            }) => {
                assert_eq!(kind, CancelKind::Explicit);
                assert!(rows_done < rows_total, "family {family}: partial progress");
            }
            other => panic!("family {family}: expected cancellation, got {other:?}"),
        }
        let redo = CycleTimeAnalysis::run_in(&sg, None, &mut arena).expect("live");
        assert_analyses_identical(&full, &redo, &format!("family {family} post-abort arena"));
    }
}
