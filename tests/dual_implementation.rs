//! Dual-implementation cross-check: the production timing simulations run
//! period-synchronously without materialising the unfolding; this test
//! recomputes the same quantities with a *second, independent*
//! implementation — explicit unfolding construction plus a generic DAG
//! longest-path pass — and asserts exact agreement.

use proptest::prelude::*;

use tsg::core::analysis::initiated::InitiatedSimulation;
use tsg::core::analysis::sim::TimingSimulation;
use tsg::core::unfold::{InstId, Unfolding};
use tsg::core::SignalGraph;
use tsg::gen::{random_live_tsg, RandomTsgConfig};
use tsg::graph::topo::topological_order;
use tsg::graph::NodeId;

/// Longest-path times over the explicit unfolding, sources at 0.
fn unfolding_times(sg: &SignalGraph, u: &Unfolding) -> Vec<f64> {
    let g = u.digraph();
    let order = topological_order(g).expect("unfolding is a DAG");
    let mut t = vec![0.0f64; u.instance_count()];
    for node in order {
        for (k, &e) in g.in_edges(node).iter().enumerate() {
            let _ = k;
            let src = g.src(e);
            let arc = sg.arc(u.edge_origin(e.index()));
            t[node.index()] = t[node.index()].max(t[src.index()] + arc.delay().get());
        }
    }
    t
}

/// Longest path from one instantiation, `NEG_INFINITY` where unreachable.
fn unfolding_initiated(sg: &SignalGraph, u: &Unfolding, origin: InstId) -> Vec<f64> {
    let g = u.digraph();
    let order = topological_order(g).expect("unfolding is a DAG");
    let mut t = vec![f64::NEG_INFINITY; u.instance_count()];
    t[origin.index()] = 0.0;
    for node in order {
        if node == NodeId(origin.0) {
            continue;
        }
        for &e in g.in_edges(node) {
            let src = g.src(e);
            if t[src.index()] == f64::NEG_INFINITY {
                continue;
            }
            let arc = sg.arc(u.edge_origin(e.index()));
            t[node.index()] = t[node.index()].max(t[src.index()] + arc.delay().get());
        }
    }
    t
}

fn cfg() -> RandomTsgConfig {
    RandomTsgConfig {
        events: 10,
        tokens: 3,
        chords: 10,
        max_delay: 7,
        with_prefix: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `TimingSimulation` equals the explicit-unfolding longest path.
    #[test]
    fn full_simulation_agrees_with_unfolding(seed in 0u64..10_000) {
        let sg = random_live_tsg(seed, cfg());
        let periods = 4;
        let sim = TimingSimulation::run(&sg, periods);
        let unfolding = Unfolding::build(&sg, periods);
        let times = unfolding_times(&sg, &unfolding);
        for id in unfolding.instance_ids() {
            let info = unfolding.info(id);
            let got = sim.time(info.event, info.index).expect("within horizon");
            prop_assert!(
                (got - times[id.index()]).abs() < 1e-9,
                "{} : sim {got} vs unfolding {}",
                unfolding.display(&sg, id),
                times[id.index()]
            );
        }
    }

    /// `InitiatedSimulation` equals the explicit-unfolding single-source
    /// longest path, including unreachability.
    #[test]
    fn initiated_simulation_agrees_with_unfolding(seed in 0u64..10_000) {
        let sg = random_live_tsg(seed, cfg());
        let periods = 4;
        let unfolding = Unfolding::build(&sg, periods + 1);
        for &g in sg.border_events().iter().take(3) {
            let sim = InitiatedSimulation::run(&sg, g, periods).unwrap();
            let origin = unfolding.instance(g, 0).unwrap();
            let times = unfolding_initiated(&sg, &unfolding, origin);
            for e in sg.repetitive_events() {
                for p in 0..=periods {
                    let id = unfolding.instance(e, p).unwrap();
                    match sim.time(e, p) {
                        Some(t) => prop_assert!(
                            (t - times[id.index()]).abs() < 1e-9,
                            "{}: {t} vs {}", unfolding.display(&sg, id), times[id.index()]
                        ),
                        None => prop_assert_eq!(
                            times[id.index()], f64::NEG_INFINITY,
                            "{} should be unreachable", unfolding.display(&sg, id)
                        ),
                    }
                }
            }
        }
    }

    /// Precedence in the unfolding implies time ordering in the simulation
    /// (causality soundness).
    #[test]
    fn precedence_implies_time_order(seed in 0u64..2_000) {
        let sg = random_live_tsg(seed, cfg());
        let periods = 3;
        let sim = TimingSimulation::run(&sg, periods);
        let unfolding = Unfolding::build(&sg, periods);
        let ids: Vec<_> = unfolding.instance_ids().collect();
        for &a in ids.iter().take(12) {
            for &b in ids.iter().take(12) {
                if a != b && unfolding.precedes(a, b) {
                    let ia = unfolding.info(a);
                    let ib = unfolding.info(b);
                    let ta = sim.time(ia.event, ia.index).unwrap();
                    let tb = sim.time(ib.event, ib.index).unwrap();
                    prop_assert!(ta <= tb + 1e-9, "precedence violated: {ta} > {tb}");
                }
            }
        }
    }
}
