//! Integration of the circuit substrate: netlist text round-trips,
//! extraction vs. event-driven simulation on whole circuit families.

use proptest::prelude::*;

use tsg::circuit::parse::{parse_ckt, write_ckt};
use tsg::circuit::{library, EventDrivenSim};
use tsg::core::analysis::CycleTimeAnalysis;
use tsg::extract::{explore, extract, ExtractOptions};

/// For every library circuit: the analytical cycle time from the extracted
/// graph equals the steady-state period observed by the gate-level DES.
#[test]
fn analysis_matches_des_on_library() {
    let circuits: Vec<(&str, tsg::circuit::Netlist, &str)> = vec![
        ("oscillator", library::c_element_oscillator(), "a"),
        ("muller3", library::muller_ring(3, 1.0), "s0"),
        ("muller5", library::muller_ring(5, 1.0), "s0"),
        ("muller7", library::muller_ring(7, 2.0), "s0"),
        ("inv_ring5", library::inverter_ring(5, 1.0), "g0"),
        ("inv_ring7", library::inverter_ring(7, 3.0), "g0"),
    ];
    for (name, nl, probe) in circuits {
        let sg = extract(&nl, ExtractOptions::default()).unwrap_or_else(|e| panic!("{name}: {e}"));
        let tau = CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64();
        let mut des = EventDrivenSim::new(&nl);
        let trace = des.run(tau * 400.0, 2_000_000).unwrap();
        let s = nl.signal(probe).unwrap();
        let observed = EventDrivenSim::average_period(&trace, s, true)
            .unwrap_or_else(|| panic!("{name}: no steady period"));
        assert!(
            (observed - tau).abs() < tau * 0.02 + 1e-9,
            "{name}: DES {observed} vs analysis {tau}"
        );
    }
}

/// Extraction output always passes Signal Graph validation and its border
/// set is a cut set.
#[test]
fn extraction_output_is_well_formed() {
    for n in 3..9 {
        let nl = library::muller_ring(n, 1.0);
        let sg = extract(&nl, ExtractOptions::default()).unwrap();
        assert!(tsg::core::analysis::border::is_cut_set(
            &sg,
            &sg.border_events()
        ));
        assert!(tsg::core::unfold::check_signal_consistency(&sg).is_ok());
    }
}

/// Semimodularity holds for all Muller rings (they are delay-insensitive
/// up to the inverter forks).
#[test]
fn muller_rings_semimodular() {
    for n in 3..8 {
        let report = explore(&library::muller_ring(n, 1.0), 5_000_000);
        assert!(report.is_semimodular(), "ring {n}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `.ckt` round-trip preserves the netlist and therefore the analysis.
    #[test]
    fn ckt_roundtrip(n in 3usize..9, delay in 1u32..5) {
        let nl = library::muller_ring(n, f64::from(delay));
        let text = write_ckt(&nl);
        let back = parse_ckt(&text).unwrap();
        prop_assert_eq!(write_ckt(&back), text);
        let sg1 = extract(&nl, ExtractOptions::default()).unwrap();
        let sg2 = extract(&back, ExtractOptions::default()).unwrap();
        let t1 = CycleTimeAnalysis::run(&sg1).unwrap().cycle_time().as_f64();
        let t2 = CycleTimeAnalysis::run(&sg2).unwrap().cycle_time().as_f64();
        prop_assert_eq!(t1, t2);
    }

    /// Scaling every gate delay scales the extracted cycle time linearly.
    #[test]
    fn extraction_delay_scaling(n in 3usize..8, k in 1u32..6) {
        let base = extract(&library::muller_ring(n, 1.0), ExtractOptions::default()).unwrap();
        let scaled = extract(
            &library::muller_ring(n, f64::from(k)),
            ExtractOptions::default(),
        )
        .unwrap();
        let t1 = CycleTimeAnalysis::run(&base).unwrap().cycle_time().as_f64();
        let t2 = CycleTimeAnalysis::run(&scaled).unwrap().cycle_time().as_f64();
        prop_assert!((t2 - t1 * f64::from(k)).abs() < 1e-9);
    }
}
