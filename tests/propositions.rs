//! Property tests for the paper's propositions (Sections IV–VI).

use proptest::prelude::*;

use tsg::core::analysis::asymptotic::delta_series;
use tsg::core::analysis::border::{
    exact_max_occurrence_period, is_cut_set, max_occurrence_period_bound, minimum_cut_set,
};
use tsg::core::analysis::initiated::InitiatedSimulation;
use tsg::core::analysis::CycleTimeAnalysis;
use tsg::gen::{random_live_tsg, RandomTsgConfig};

fn small_cfg() -> RandomTsgConfig {
    RandomTsgConfig {
        events: 10,
        tokens: 3,
        chords: 8,
        max_delay: 7,
        with_prefix: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Proposition 1: `t_g(e_k)` is realised by an actual path — the
    /// backtracked path's length equals the simulated time.
    #[test]
    fn prop1_backtracked_path_realises_time(seed in 0u64..10_000) {
        let sg = random_live_tsg(seed, small_cfg());
        let g = sg.border_events()[0];
        let periods = 4;
        let sim = InitiatedSimulation::run(&sg, g, periods).unwrap();
        for e in sg.repetitive_events() {
            for p in 0..=periods {
                if let Some(t) = sim.time(e, p) {
                    let path = sim.backtrack_in(&sg, e, p).unwrap();
                    prop_assert!((sg.path_length(&path) - t).abs() < 1e-9);
                    prop_assert_eq!(sg.occurrence_period(&path), p);
                }
            }
        }
    }

    /// Proposition 2: all repetitive events share the same cycle time —
    /// every event's δ-series converges to τ.
    #[test]
    fn prop2_common_cycle_time(seed in 0u64..2_000) {
        let sg = random_live_tsg(seed, small_cfg());
        let tau = CycleTimeAnalysis::run(&sg).unwrap().cycle_time().as_f64();
        let horizon = 192;
        for e in sg.repetitive_events() {
            let series = delta_series(&sg, e, horizon).unwrap();
            let last = series.last().unwrap();
            prop_assert!(
                (last.delta - tau).abs() <= tau * 0.08 + 1e-9,
                "event {} converges to {} not {}", sg.label(e), last.delta, tau
            );
        }
    }

    /// Proposition 3 ("triangular inequality"):
    /// `t_g(g_k) >= t_g(g_j) + t_g(g_{k-j})`.
    #[test]
    fn prop3_triangle_inequality(seed in 0u64..10_000) {
        let sg = random_live_tsg(seed, small_cfg());
        for &g in &sg.border_events() {
            let periods = 6;
            let sim = InitiatedSimulation::run(&sg, g, periods).unwrap();
            for k in 2..=periods {
                let Some(tk) = sim.time(g, k) else { continue };
                for j in 1..k {
                    let (Some(tj), Some(tkj)) = (sim.time(g, j), sim.time(g, k - j)) else {
                        continue;
                    };
                    prop_assert!(
                        tk + 1e-9 >= tj + tkj,
                        "t({k})={tk} < t({j})={tj} + t({})={tkj}", k - j
                    );
                }
            }
        }
    }

    /// Propositions 4/7: τ is attained by some border event within b
    /// periods, and never exceeded by any δ value.
    #[test]
    fn prop4_7_max_within_b_periods(seed in 0u64..10_000) {
        let sg = random_live_tsg(seed, small_cfg());
        let analysis = CycleTimeAnalysis::run(&sg).unwrap();
        let tau = analysis.cycle_time();
        let b = sg.border_events().len() as u32;
        let mut attained = false;
        for &g in &sg.border_events() {
            let sim = InitiatedSimulation::run(&sg, g, b).unwrap();
            for (i, t, _) in sim.distance_series() {
                // no δ exceeds τ (cross-multiplied)
                prop_assert!(
                    t * tau.periods() as f64 <= tau.length() * i as f64 + 1e-9,
                    "δ at i={i} exceeds τ"
                );
                if (t * tau.periods() as f64 - tau.length() * i as f64).abs() < 1e-9 {
                    attained = true;
                }
            }
        }
        prop_assert!(attained, "τ must be attained by a border event within b periods");
    }

    /// Proposition 8: a border event off every critical cycle stays
    /// strictly below τ at every horizon.
    #[test]
    fn prop8_off_cycle_strictly_below(seed in 0u64..2_000) {
        let sg = random_live_tsg(seed, small_cfg());
        let analysis = CycleTimeAnalysis::run(&sg).unwrap();
        let tau = analysis.cycle_time();
        for &g in &sg.border_events() {
            if analysis.critical_borders().contains(&g) {
                continue;
            }
            let sim = InitiatedSimulation::run(&sg, g, 24).unwrap();
            for (i, t, _) in sim.distance_series() {
                prop_assert!(
                    (t * tau.periods() as f64) < (tau.length() * i as f64),
                    "off-critical border {} attains τ at i={i}", sg.label(g)
                );
            }
        }
    }

    /// Proposition 6, corrected: no simple cycle spans more periods than
    /// the border-set size (the bound the algorithm actually relies on);
    /// the exact ε_max matches enumeration; the border set is a cut set.
    ///
    /// Note: the paper states the bound as the *minimum cut set* size,
    /// which is falsified by a 4-ring with two tokens (see the regression
    /// test in `tsg-core::analysis::border`); minimum cut sets are still
    /// valid cut sets and never larger than the border set.
    #[test]
    fn prop6_epsilon_bound(seed in 0u64..2_000) {
        let sg = random_live_tsg(seed, small_cfg());
        prop_assert!(is_cut_set(&sg, &sg.border_events()));
        let bound = max_occurrence_period_bound(&sg);
        let exact = exact_max_occurrence_period(&sg, 100_000);
        if let Ok(inventory) = tsg::baselines::CycleInventory::build(&sg, 100_000) {
            let max_eps = inventory.cycles.iter().map(|c| c.2).max().unwrap_or(0);
            prop_assert_eq!(exact, (max_eps > 0).then_some(max_eps));
            for (_, _, eps) in &inventory.cycles {
                prop_assert!(
                    *eps as usize <= bound,
                    "cycle spans {eps} periods > border bound {bound}"
                );
            }
        }
        if let Some(min_cut) = minimum_cut_set(&sg, 24) {
            prop_assert!(is_cut_set(&sg, &min_cut));
            prop_assert!(min_cut.len() <= sg.border_events().len());
        }
    }
}
