//! Incremental analysis sessions against the from-scratch algorithm.
//!
//! The correctness bar of `AnalysisSession`: after *any* sequence of
//! delay edits on *any* graph, the session's analysis is bit-identical
//! to `CycleTimeAnalysis::run` on the edited graph — same cycle-time
//! bits, same critical cycle, same border records. These properties
//! drive random edit scripts over every `tsg_gen` generator family
//! (rings, tori, handshake pipelines, seeded random live graphs), and
//! pin the kernel checkpoint machinery underneath: the paused
//! event simulation resumes bit-identically on either queue backend.

use proptest::prelude::*;
use tsg::core::analysis::event_sim::{EventSimScratch, EventSimulation};
use tsg::core::analysis::session::{AnalysisSession, DelayEdit, EditError, GraphEdit};
use tsg::core::analysis::{AnalysisError, Corner, CycleTimeAnalysis, KernelBackend, ScenarioSet};
use tsg::core::{ArcId, EventId, SignalGraph};
use tsg::gen::{handshake_pipeline, random_live_tsg, ring, torus, PipelineConfig, RandomTsgConfig};
use tsg::sim::{CancelToken, QueueKind};
use tsg_bench::{assert_analyses_identical, available_backends};

/// One generated graph per `(family, seed)` pair, covering every
/// generator family with modest sizes.
fn graph(family: usize, seed: u64) -> SignalGraph {
    match family % 4 {
        0 => ring(5 + (seed % 28) as usize, 1 + (seed % 5) as usize, 1.5),
        1 => torus(
            2 + (seed % 3) as usize,
            2 + (seed / 3 % 4) as usize,
            2.0,
            3.0,
        ),
        2 => handshake_pipeline(
            1 + (seed % 5) as usize,
            PipelineConfig {
                req_delay: 2.0,
                ack_delay: 1.0,
                coupling_delay: 1.0 + (seed % 3) as f64,
            },
        ),
        _ => random_live_tsg(seed, RandomTsgConfig::default()),
    }
}

/// A deterministic edit script from one seed: arc indices stride
/// through the graph, delays cycle through a small value set (including
/// repeats and zeros).
fn script(sg: &SignalGraph, seed: u64, count: usize) -> Vec<DelayEdit> {
    let m = sg.arc_count() as u64;
    (0..count as u64)
        .map(|i| {
            let k = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i * 37);
            DelayEdit {
                arc: ArcId((k % m) as u32),
                delay: [0.0, 0.5, 1.0, 2.5, 4.0, 7.25][(k / m % 6) as usize],
            }
        })
        .collect()
}

/// One deterministic mixed move per `k`: a delay edit, a pipeline-stage
/// split (always valid), a speculative marked-arc addition, or an arc
/// removal. The last two may break a graph rule — the session's
/// transactional edit API rejects those batches whole, which the
/// properties treat as a legal (state-preserving) outcome.
fn mixed_batch(sg: &SignalGraph, k: u64, fresh: &mut u32) -> Vec<GraphEdit> {
    let live: Vec<ArcId> = sg.arc_ids().filter(|&a| sg.is_live_arc(a)).collect();
    let pick_arc = |xs: &[ArcId], j: u64| xs[(j % xs.len() as u64) as usize];
    match k % 5 {
        0 | 1 => vec![GraphEdit::Delay {
            arc: pick_arc(&live, k / 5),
            delay: [0.0, 0.5, 1.0, 2.5, 4.0, 7.25][(k / 7 % 6) as usize],
        }],
        2 => {
            // Pipeline split: replace a cyclic arc by two halves through
            // a fresh event, the second half marked — always valid.
            let cyclic: Vec<ArcId> = sg
                .arc_ids()
                .filter(|&a| {
                    let arc = sg.arc(a);
                    sg.is_live_arc(a)
                        && !arc.is_disengageable()
                        && sg.is_repetitive(arc.src())
                        && sg.is_repetitive(arc.dst())
                })
                .collect();
            let a = pick_arc(&cyclic, k / 5);
            let arc = sg.arc(a);
            *fresh += 1;
            let mid = EventId(sg.event_count() as u32);
            let half = arc.delay().get() / 2.0;
            vec![
                GraphEdit::RemoveArc { arc: a },
                GraphEdit::AddEvent {
                    label: format!("w{fresh}"),
                },
                GraphEdit::AddArc {
                    src: arc.src(),
                    dst: mid,
                    delay: half,
                    marked: arc.is_marked(),
                },
                GraphEdit::AddArc {
                    src: mid,
                    dst: arc.dst(),
                    delay: half,
                    marked: true,
                },
            ]
        }
        3 => {
            // Speculative arc addition between two repetitive events;
            // an unmarked choice that closes a token-free cycle is
            // rejected by validation.
            let reps: Vec<EventId> = sg
                .events()
                .filter(|&e| sg.is_live_event(e) && sg.is_repetitive(e))
                .collect();
            let u = reps[(k / 5 % reps.len() as u64) as usize];
            let v = reps[(k / 11 % reps.len() as u64) as usize];
            vec![GraphEdit::AddArc {
                src: u,
                dst: v,
                delay: [0.5, 1.0, 2.0][(k / 13 % 3) as usize],
                marked: k.is_multiple_of(2),
            }]
        }
        _ => vec![GraphEdit::RemoveArc {
            arc: pick_arc(&live, k / 5),
        }],
    }
}

/// Key of the `step`-th mixed move of a seeded script.
fn mix_key(seed: u64, step: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(step * 43)
}

/// Applies one mixed batch, tolerating transactional rejection (the
/// session is unchanged then) and panicking on any other error.
fn apply_mixed(session: &mut AnalysisSession, batch: &[GraphEdit], ctx: &str) -> bool {
    match session.edit_structure(batch) {
        Ok(delta) => {
            assert!(delta.rows <= delta.rows_total, "{ctx}");
            assert!(delta.dirty <= delta.borders, "{ctx}");
            true
        }
        Err(EditError::Invalid(_) | EditError::NoCyclicBehavior) => false,
        Err(e) => panic!("{ctx}: unexpected edit error: {e:?}"),
    }
}

/// A scenario set over `sg`'s arcs: corner sets of 1–3 corners for
/// even `pick`, seeded sample sets of 1–5 lanes otherwise (the same
/// mix the wide-kernel properties sweep).
fn scenario_set(sg: &SignalGraph, pick: u64) -> ScenarioSet {
    const CORNERS: [Corner; 3] = [Corner::Min, Corner::Typ, Corner::Max];
    let slots = sg.arc_count();
    if pick.is_multiple_of(2) {
        let count = 1 + (pick / 2 % 3) as usize;
        let derate = [5.0, 10.0, 25.0][(pick / 7 % 3) as usize];
        ScenarioSet::corners(derate, &CORNERS[..count], slots).expect("non-empty corner list")
    } else {
        let count = 1 + (pick / 2 % 5) as usize;
        ScenarioSet::samples(count, pick, 10.0, slots).expect("non-zero sample count")
    }
}

/// Every scenario lane the session keeps warm must hold the exact bits
/// of a from-scratch *scalar* analysis of the corresponding reweighted
/// graph — the session's own (possibly resized) set is the oracle, so
/// structural edits that grow the arc table are covered too.
fn assert_scenario_lanes_match_scratch(session: &AnalysisSession, ctx: &str) {
    let set = session.scenario_set().expect("scenarios enabled");
    let sa = session.scenario_analysis().expect("scenarios enabled");
    assert_eq!(sa.len(), set.len(), "{ctx}: scenario lane count");
    for j in 0..set.len() {
        let scalar = CycleTimeAnalysis::run_scalar(&set.reweighted(session.graph(), j))
            .expect("reweighting keeps the graph live");
        assert_analyses_identical(
            &scalar,
            sa.analysis(j),
            &format!("{ctx} [{}]", set.label(j)),
        );
    }
}

fn assert_session_matches_scratch(session: &AnalysisSession, ctx: &str) {
    let scratch = CycleTimeAnalysis::run(session.graph()).expect("graph stays live");
    let a = session.analysis();
    assert_eq!(
        a.cycle_time().as_f64().to_bits(),
        scratch.cycle_time().as_f64().to_bits(),
        "{ctx}: cycle time bits"
    );
    assert_eq!(
        a.cycle_time().periods(),
        scratch.cycle_time().periods(),
        "{ctx}: periods"
    );
    assert_eq!(a.critical_cycle(), scratch.critical_cycle(), "{ctx}: cycle");
    assert_eq!(
        a.critical_borders(),
        scratch.critical_borders(),
        "{ctx}: critical borders"
    );
    assert_eq!(a.border_events(), scratch.border_events(), "{ctx}: borders");
    for (ra, rb) in a.records().iter().zip(scratch.records()) {
        assert_eq!(ra.event, rb.event, "{ctx}");
        assert_eq!(ra.distances, rb.distances, "{ctx}: record distances");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance criterion: random edit sequences on every
    /// generator family, each step bit-identical to from-scratch.
    #[test]
    fn random_edit_sequences_match_from_scratch(
        family in 0usize..4,
        seed in 0u64..10_000,
        edits in 1usize..10,
    ) {
        let sg = graph(family, seed);
        let mut session = AnalysisSession::open(sg).expect("generated graphs are live");
        for (step, e) in script(session.graph(), seed, edits).into_iter().enumerate() {
            let delta = session.edit_delay(e.arc, e.delay).unwrap();
            prop_assert!(delta.rows <= delta.rows_total);
            prop_assert!(delta.dirty <= delta.borders);
            assert_session_matches_scratch(
                &session,
                &format!("family {family} seed {seed} step {step}"),
            );
        }
    }

    /// Batched edits apply atomically and match from-scratch too.
    #[test]
    fn batched_edits_match_from_scratch(
        family in 0usize..4,
        seed in 0u64..10_000,
        edits in 2usize..8,
    ) {
        let sg = graph(family, seed);
        let mut session = AnalysisSession::open(sg).expect("generated graphs are live");
        let batch = script(session.graph(), seed, edits);
        session.edit_delays(&batch).unwrap();
        assert_session_matches_scratch(&session, &format!("family {family} seed {seed} batch"));
    }

    /// Structural incremental edits (PR 8): random interleavings of
    /// delay edits, pipeline splits, arc additions and removals on
    /// every generator family — after every step (applied or rejected
    /// whole) the session is bit-identical to from-scratch.
    #[test]
    fn mixed_structural_scripts_match_from_scratch(
        family in 0usize..4,
        seed in 0u64..10_000,
        steps in 1usize..8,
    ) {
        let mut session = AnalysisSession::open(graph(family, seed)).expect("live");
        let mut fresh = 0u32;
        for step in 0..steps as u64 {
            let ctx = format!("family {family} seed {seed} struct step {step}");
            let batch = mixed_batch(session.graph(), mix_key(seed, step), &mut fresh);
            apply_mixed(&mut session, &batch, &ctx);
            assert_session_matches_scratch(&session, &ctx);
        }
    }

    /// One batch mixing a delay edit with a structural splice applies
    /// atomically and matches from-scratch.
    #[test]
    fn combined_delay_and_structural_batches_match_from_scratch(
        family in 0usize..4,
        seed in 0u64..10_000,
    ) {
        let mut session = AnalysisSession::open(graph(family, seed)).expect("live");
        let mut fresh = 0u32;
        let delay = mixed_batch(session.graph(), mix_key(seed, 0) / 5 * 5, &mut fresh);
        let split = mixed_batch(session.graph(), mix_key(seed, 1) / 5 * 5 + 2, &mut fresh);
        let batch: Vec<GraphEdit> = delay.into_iter().chain(split).collect();
        let ctx = format!("family {family} seed {seed} combined");
        apply_mixed(&mut session, &batch, &ctx);
        assert_session_matches_scratch(&session, &ctx);
    }

    /// Scenario lanes ride the session's incremental resume (PR 9):
    /// with a corner or sample set enabled, every delay edit resumes
    /// *all* `b × s` lanes from the minimum dirty row, and after every
    /// step each scenario lane must match a from-scratch scalar
    /// analysis of its reweighted graph — alongside the nominal lanes.
    #[test]
    fn scenario_lanes_survive_random_delay_edits(
        family in 0usize..4,
        seed in 0u64..10_000,
        edits in 1usize..6,
        pick in 0u64..1_000,
    ) {
        let sg = graph(family, seed);
        let mut session = AnalysisSession::open(sg).expect("generated graphs are live");
        let set = scenario_set(session.graph(), pick);
        session.enable_scenarios(&set).expect("live");
        assert_scenario_lanes_match_scratch(
            &session,
            &format!("family {family} seed {seed} pick {pick} enable"),
        );
        for (step, e) in script(session.graph(), seed, edits).into_iter().enumerate() {
            session.edit_delay(e.arc, e.delay).unwrap();
            let ctx = format!("family {family} seed {seed} pick {pick} step {step}");
            assert_session_matches_scratch(&session, &ctx);
            assert_scenario_lanes_match_scratch(&session, &ctx);
        }
    }

    /// Scenario lanes across *structural* edit scripts: splices that
    /// grow the arc table force the session to re-derive the factor
    /// matrix over the new slots and reseed every scenario lane; after
    /// every batch (applied or rejected whole) each lane must still
    /// match the scalar engine on its reweighted graph.
    #[test]
    fn scenario_lanes_survive_mixed_structural_scripts(
        family in 0usize..4,
        seed in 0u64..10_000,
        steps in 1usize..6,
        pick in 0u64..1_000,
    ) {
        let mut session = AnalysisSession::open(graph(family, seed)).expect("live");
        let set = scenario_set(session.graph(), pick);
        session.enable_scenarios(&set).expect("live");
        let mut fresh = 0u32;
        for step in 0..steps as u64 {
            let ctx = format!("family {family} seed {seed} pick {pick} struct step {step}");
            let batch = mixed_batch(session.graph(), mix_key(seed, step), &mut fresh);
            apply_mixed(&mut session, &batch, &ctx);
            assert_session_matches_scratch(&session, &ctx);
            assert_scenario_lanes_match_scratch(&session, &ctx);
        }
    }

    /// The same resume discipline holds with the kernel pinned to each
    /// backend this CPU offers: scenario lanes resumed mid-matrix by a
    /// short edit script stay bit-identical to the scalar engine on
    /// every backend.
    #[test]
    fn scenario_lanes_resume_mid_matrix_on_every_backend(
        family in 0usize..4,
        seed in 0u64..10_000,
        edits in 1usize..4,
        pick in 0u64..1_000,
    ) {
        for backend in available_backends() {
            let sg = graph(family, seed);
            let mut session = AnalysisSession::open_with_kernel(sg, backend).expect("live");
            let set = scenario_set(session.graph(), pick);
            session.enable_scenarios(&set).expect("live");
            for (step, e) in script(session.graph(), seed, edits).into_iter().enumerate() {
                session.edit_delay(e.arc, e.delay).unwrap();
                assert_scenario_lanes_match_scratch(
                    &session,
                    &format!("family {family} seed {seed} pick {pick} step {step} [{}]", backend.name()),
                );
            }
        }
    }

    /// The kernel checkpoint underneath: an event simulation paused at
    /// a random time resumes to the uninterrupted result — on both
    /// queue backends, including pausing on one and resuming on the
    /// other (a `QueueCheckpoint` is storage-independent), and on
    /// graphs whose delays a session has already edited.
    #[test]
    fn paused_event_simulation_resumes_bit_identically(
        family in 0usize..4,
        seed in 0u64..10_000,
        edits in 0usize..6,
        periods in 1u32..5,
        pause_quarter in 0u32..160,
    ) {
        let pause_at = f64::from(pause_quarter) * 0.25;
        let mut session = AnalysisSession::open(graph(family, seed)).expect("live");
        for e in script(session.graph(), seed, edits) {
            session.edit_delay(e.arc, e.delay).unwrap();
        }
        let sg = session.graph();
        let straight = EventSimulation::run(sg, periods);
        for (pause_kind, resume_kind) in [
            (QueueKind::Heap, QueueKind::Heap),
            (QueueKind::Heap, QueueKind::Calendar),
            (QueueKind::Calendar, QueueKind::Heap),
            (QueueKind::Calendar, QueueKind::Calendar),
        ] {
            let mut pause_scratch = EventSimScratch::new(pause_kind);
            let mut resume_scratch = EventSimScratch::new(resume_kind);
            let paused = EventSimulation::run_until(sg, periods, &mut pause_scratch, pause_at);
            let resumed = paused.resume(sg, &mut resume_scratch);
            for e in sg.events() {
                for p in 0..periods {
                    prop_assert_eq!(
                        straight.time(e, p).map(f64::to_bits),
                        resumed.time(e, p).map(f64::to_bits),
                        "{:?}->{:?} {}_{}", pause_kind, resume_kind, sg.label(e), p
                    );
                }
            }
        }
    }
}

/// A long deterministic soak on one graph per family: 40 edits each,
/// verified bit-identically at every step (catches drift that only
/// accumulates over many resumed rows).
#[test]
fn long_edit_soak_per_family() {
    for family in 0..4usize {
        let mut session = AnalysisSession::open(graph(family, 7)).expect("live");
        for (step, e) in script(session.graph(), 7, 40).into_iter().enumerate() {
            session.edit_delay(e.arc, e.delay).unwrap();
            if step % 5 == 4 {
                assert_session_matches_scratch(&session, &format!("family {family} step {step}"));
            }
        }
        assert_session_matches_scratch(&session, &format!("family {family} final"));
    }
}

/// A deterministic scenario soak per family: 16 mixed structural moves
/// on one session with a 4-sample set enabled throughout, nominal and
/// scenario lanes bit-verified after every batch (catches factor-matrix
/// drift that only shows after repeated reseeds and lane remaps).
#[test]
fn long_scenario_soak_per_family() {
    for family in 0..4usize {
        let mut session = AnalysisSession::open(graph(family, 9)).expect("live");
        let set = ScenarioSet::samples(4, 9, 10.0, session.graph().arc_count()).expect("live");
        session.enable_scenarios(&set).expect("live");
        let mut fresh = 0u32;
        for step in 0..16u64 {
            let ctx = format!("family {family} scenario soak step {step}");
            let batch = mixed_batch(session.graph(), mix_key(9, step), &mut fresh);
            apply_mixed(&mut session, &batch, &ctx);
            assert_session_matches_scratch(&session, &ctx);
            assert_scenario_lanes_match_scratch(&session, &ctx);
        }
    }
}

// ---------------------------------------------------------------------
// Cancellation bit-safety (PR 7): a session aborted mid-matrix by a
// cancel token stays consistent — the edits are applied, the session
// reports itself stale, and the next uncancelled call (even an empty
// batch) heals it to the exact bits a fresh analysis produces.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random batches under a random check budget: whether the token
    /// fires or the batch survives, the healed session is always
    /// bit-identical to from-scratch.
    #[test]
    fn aborted_batch_edits_heal_bit_identically(
        family in 0usize..4,
        seed in 0u64..10_000,
        edits in 2usize..8,
        budget in 0u64..8,
    ) {
        let sg = graph(family, seed);
        let mut session = AnalysisSession::open(sg).expect("generated graphs are live");
        let batch = script(session.graph(), seed, edits);
        let token = CancelToken::cancel_after_checks(budget);
        match session.edit_delays_with_cancel(&batch, Some(&token)) {
            Ok(_) => prop_assert!(!session.is_stale()),
            Err(EditError::Cancelled { rows_done, rows_total, .. }) => {
                prop_assert!(session.is_stale());
                prop_assert!(rows_done <= rows_total);
                // An empty uncancelled batch heals the stale region.
                session.edit_delays(&[]).unwrap();
            }
            Err(e) => panic!("unexpected edit error: {e:?}"),
        }
        prop_assert!(!session.is_stale());
        assert_session_matches_scratch(
            &session,
            &format!("family {family} seed {seed} abort budget {budget}"),
        );
    }

    /// Cancel-then-heal for *structural* edits: a pipeline split whose
    /// lane reseed (or dirty-row resume) is aborted leaves the new
    /// graph committed with a stale analysis, and the next uncancelled
    /// call heals it to the from-scratch bits.
    #[test]
    fn aborted_structural_edits_heal_bit_identically(
        family in 0usize..4,
        seed in 0u64..10_000,
        budget in 0u64..8,
    ) {
        let mut session = AnalysisSession::open(graph(family, seed)).expect("live");
        let mut fresh = 0u32;
        // Force the always-valid split move (key % 5 == 2) so the only
        // possible failure is the cancellation under test.
        let batch = mixed_batch(session.graph(), mix_key(seed, 0) / 5 * 5 + 2, &mut fresh);
        let event_count = session.graph().event_count();
        let token = CancelToken::cancel_after_checks(budget);
        match session.edit_structure_with_cancel(&batch, Some(&token)) {
            Ok(_) => prop_assert!(!session.is_stale()),
            Err(EditError::Cancelled { rows_done, rows_total, .. }) => {
                prop_assert!(session.is_stale());
                prop_assert!(rows_done <= rows_total);
                prop_assert_eq!(
                    session.graph().event_count(),
                    event_count + 1,
                    "the structural batch commits even when the rerun is cancelled"
                );
                session.edit_delays(&[]).unwrap();
            }
            Err(e) => panic!("unexpected edit error: {e:?}"),
        }
        prop_assert!(!session.is_stale());
        assert_session_matches_scratch(
            &session,
            &format!("family {family} seed {seed} struct abort budget {budget}"),
        );
    }
}

/// A deterministic soak of repeated aborts mid-script: every chunk is
/// attempted under a tiny check budget, healed when it fired, and the
/// session must match from-scratch after every step.
#[test]
fn repeated_aborts_mid_script_heal_bit_identically() {
    for family in 0..4usize {
        let mut session = AnalysisSession::open(graph(family, 13)).expect("live");
        let edits = script(session.graph(), 13, 24);
        for (step, chunk) in edits.chunks(3).enumerate() {
            let token = CancelToken::cancel_after_checks((step % 4) as u64);
            match session.edit_delays_with_cancel(chunk, Some(&token)) {
                Ok(_) => {}
                Err(EditError::Cancelled { .. }) => {
                    session.edit_delays(&[]).unwrap();
                }
                Err(e) => panic!("unexpected edit error: {e:?}"),
            }
            assert!(!session.is_stale());
            assert_session_matches_scratch(&session, &format!("family {family} step {step}"));
        }
    }
}

/// A long deterministic structural soak on one graph per family: 24
/// mixed moves (delay nudges, splits, additions, removals) with a
/// cancel-then-heal cycle every fourth step, bit-verified throughout.
#[test]
fn long_structural_soak_with_aborts_per_family() {
    for family in 0..4usize {
        let mut session = AnalysisSession::open(graph(family, 17)).expect("live");
        let mut fresh = 0u32;
        for step in 0..24u64 {
            let ctx = format!("family {family} struct soak step {step}");
            let batch = mixed_batch(session.graph(), mix_key(17, step), &mut fresh);
            if step % 4 == 3 {
                let token = CancelToken::cancel_after_checks(step % 3);
                match session.edit_structure_with_cancel(&batch, Some(&token)) {
                    Ok(_) | Err(EditError::Invalid(_) | EditError::NoCyclicBehavior) => {}
                    Err(EditError::Cancelled { .. }) => {
                        session.edit_delays(&[]).unwrap();
                    }
                    Err(e) => panic!("{ctx}: unexpected edit error: {e:?}"),
                }
            } else {
                apply_mixed(&mut session, &batch, &ctx);
            }
            assert!(!session.is_stale(), "{ctx}");
            assert_session_matches_scratch(&session, &ctx);
        }
    }
}

/// An opening analysis aborted by its token creates no session; a clean
/// retry on the same graph is bit-identical to from-scratch.
#[test]
fn cancelled_open_retries_cleanly() {
    for family in 0..4usize {
        let aborted = AnalysisSession::open_with_cancel(
            graph(family, 3),
            KernelBackend::Auto,
            Some(&CancelToken::cancel_after_checks(0)),
        );
        assert!(
            matches!(aborted, Err(AnalysisError::Cancelled { .. })),
            "family {family}: a zero-budget token must abort the open"
        );
        let session = AnalysisSession::open(graph(family, 3)).expect("live");
        assert_session_matches_scratch(&session, &format!("family {family} clean reopen"));
    }
}
