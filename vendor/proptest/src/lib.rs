//! Vendored, dependency-free subset of the `proptest` crate API.
//!
//! The build environment has no registry access, so this workspace ships a
//! miniature property-testing runner exposing the slice of `proptest` 1.x
//! that the integration tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer
//!   ranges and tuples of strategies,
//! * [`arbitrary::any`] (for `bool`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case number and panics immediately), no persistence files, and values
//! are drawn from a fixed deterministic seed per test so runs are
//! reproducible across machines and thread counts.

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// The RNG handed to strategies during generation.
    pub type TestRng = SmallRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_half_open_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_half_open_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize);

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (`any::<bool>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod test_runner {
    use super::strategy::{Strategy, TestRng};
    use rand::SeedableRng;

    /// Runner configuration (subset: the number of cases).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `body` over `config.cases` generated inputs.
    ///
    /// The RNG seed is derived from the property name so each property
    /// sees a fixed, reproducible stream. `PROPTEST_SEED` in the
    /// environment perturbs it for exploratory runs.
    pub fn run<S: Strategy>(
        config: &ProptestConfig,
        name: &str,
        strategy: &S,
        body: impl Fn(S::Value),
    ) {
        let extra: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let seed = fnv1a(name) ^ extra;
        let mut rng = TestRng::seed_from_u64(seed);
        for case in 0..config.cases {
            let value = strategy.generate(&mut rng);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(value)));
            if let Err(payload) = result {
                eprintln!(
                    "proptest: property {name:?} failed at case {case}/{} (seed {seed})",
                    config.cases
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Declares property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # fn main() { addition_commutes(); }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strategy = ($($strat,)+);
            $crate::test_runner::run(
                &config,
                stringify!($name),
                &strategy,
                |($($arg,)+)| $body,
            );
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Tuple strategies, prop_map and ranges compose.
        #[test]
        fn composed_strategies(
            pair in (0u64..100, 1usize..8).prop_map(|(a, b)| (a, b * 2)),
            flag in any::<bool>(),
        ) {
            prop_assert!(pair.0 < 100);
            prop_assert!(pair.1 % 2 == 0 && pair.1 <= 14, "pair {:?} flag {}", pair, flag);
        }
    }

    #[test]
    fn failing_property_panics() {
        let config = ProptestConfig::with_cases(8);
        let outcome = std::panic::catch_unwind(|| {
            crate::test_runner::run(&config, "always_fails", &(0u32..10,), |(_x,)| {
                panic!("nope");
            });
        });
        assert!(outcome.is_err());
    }

    #[test]
    fn deterministic_generation() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let strat = (0u64..1000, 0usize..50);
        let mut r1 = crate::strategy::TestRng::seed_from_u64(9);
        let mut r2 = crate::strategy::TestRng::seed_from_u64(9);
        for _ in 0..32 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }
}
