//! Vendored, dependency-free subset of the `criterion` crate API.
//!
//! The build environment has no registry access, so this workspace ships a
//! compact wall-clock benchmarking harness exposing the slice of
//! `criterion` 0.5 that the `tsg-bench` targets use: [`Criterion`] with
//! `bench_function` / `benchmark_group`, [`BenchmarkGroup`] with
//! `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark warms up briefly, then runs batches
//! of iterations until `measurement_time` elapses (or `sample_size`
//! batches complete), and reports the minimum, mean and maximum
//! per-iteration time. There are no plots, no statistics beyond that, and no
//! baseline persistence — the harness exists so `cargo bench` runs and
//! prints comparable numbers offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (re-export of
/// [`std::hint::black_box`]).
pub use std::hint::black_box;

/// Identifier of a parameterised benchmark: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<f64>,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Calls `routine` repeatedly and records per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            // Smoke mode: exactly one unmeasured execution.
            black_box(routine());
            return;
        }
        // Warm-up: run until the warm-up budget is spent (at least once).
        let start = Instant::now();
        loop {
            black_box(routine());
            if start.elapsed() >= self.warm_up {
                break;
            }
        }

        // Calibrate a batch size aiming at ~1ms per sample.
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(20));
        let batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;

        let deadline = Instant::now() + self.measurement;
        while self.samples.len() < self.sample_size && Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
        if self.samples.is_empty() {
            self.samples.push(once.as_secs_f64());
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// `cargo bench -- --test`: run every benchmark once, unmeasured —
    /// the smoke mode CI uses to prove the suites compile and execute.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

fn human(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

impl Criterion {
    /// Number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget for the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Wall-clock budget for the warm-up phase.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    fn run_one(&self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if self.test_mode {
            // Smoke mode: one unmeasured execution, like criterion's
            // `--test`. Configured sample sizes and budgets are ignored.
            let mut bencher = Bencher {
                samples: Vec::new(),
                warm_up: Duration::ZERO,
                measurement: Duration::ZERO,
                sample_size: 1,
                test_mode: true,
            };
            f(&mut bencher);
            println!("{label:<48} test: ok");
            return;
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            warm_up: self.warm_up_time,
            measurement: self.measurement_time,
            sample_size: self.sample_size,
            test_mode: false,
        };
        f(&mut bencher);
        let n = bencher.samples.len();
        let mean = bencher.samples.iter().sum::<f64>() / n as f64;
        let min = bencher
            .samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let max = bencher.samples.iter().copied().fold(0.0f64, f64::max);
        println!(
            "{label:<48} time: [{} {} {}]  ({n} samples)",
            human(min),
            human(mean),
            human(max)
        );
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, &mut f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions with a shared configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates the `main` function running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn test_mode_runs_routine_briefly_ignoring_config() {
        let mut calls = 0u64;
        let mut c = Criterion {
            sample_size: 1000,
            measurement_time: Duration::from_secs(3600),
            warm_up_time: Duration::from_secs(3600),
            test_mode: true,
        };
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert_eq!(calls, 1, "smoke mode is exactly one execution");
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        fast_criterion().bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_ids() {
        let mut c = fast_criterion();
        let mut group = c.benchmark_group("group");
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.finish();
        assert_eq!(BenchmarkId::new("sq", 7).to_string(), "sq/7");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }
}
