//! Vendored, dependency-free subset of the `rand` crate API.
//!
//! The build environment has no registry access, so this workspace ships
//! the narrow slice of `rand` 0.8 that `tsg-gen` uses: [`SeedableRng`],
//! [`Rng::gen_range`] over integer ranges, and [`rngs::SmallRng`].
//!
//! `SmallRng` is xoshiro256++ (the same family the real crate uses on
//! 64-bit targets), seeded through SplitMix64 exactly as
//! `seed_from_u64` specifies, so streams are deterministic, portable and
//! of high enough quality for workload generation. This shim makes no
//! attempt to be distribution-compatible with upstream `rand` — only
//! API-compatible for the calls in this workspace.

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (subset: [`SeedableRng::seed_from_u64`]).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `gen_range` can sample uniformly from a range.
pub trait SampleUniform: Copy {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Range argument of [`Rng::gen_range`] — half-open or inclusive.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                // Modulo bias is < 2^-64 for the spans used here.
                let draw = ((rng.next_u64() as u128) % span) as $t;
                low.wrapping_add(draw)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                if low == <$t>::MIN && high == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (high as u128).wrapping_sub(low as u128) + 1;
                let draw = ((rng.next_u64() as u128) % span) as $t;
                low.wrapping_add(draw)
            }
        }
    )*};
}

impl_sample_range_inclusive!(u8, u16, u32, u64, usize);

/// The raw entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u32..=1000), b.gen_range(0u32..=1000));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u32..=9);
            assert!(y <= 9);
        }
    }

    #[test]
    fn full_u64_range_does_not_overflow() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }
}
