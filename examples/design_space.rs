//! Design-space exploration with the analyzer in the loop: sweep the gate
//! delays of a handshake pipeline, watch the critical cycle move between
//! the stage logic and the inter-stage coupling, and quantify per-arc
//! slack — the "bottleneck hunting" workflow the paper's introduction
//! motivates.
//!
//! ```sh
//! cargo run --example design_space
//! ```

use tsg::core::analysis::slack::SlackAnalysis;
use tsg::core::analysis::CycleTimeAnalysis;
use tsg::gen::{handshake_pipeline, PipelineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>10} {:>10} {:>10} {:>8}  critical cycle",
        "req_delay", "ack_delay", "coupling", "tau"
    );
    for req in [1.0, 2.0, 4.0] {
        for coupling in [1.0, 4.0, 8.0] {
            let cfg = PipelineConfig {
                req_delay: req,
                ack_delay: 1.0,
                coupling_delay: coupling,
            };
            let sg = handshake_pipeline(8, cfg);
            let analysis = CycleTimeAnalysis::run(&sg)?;
            let cycle = sg.display_path(analysis.critical_cycle());
            let shown = if cycle.len() > 48 {
                format!("{}…", &cycle[..48])
            } else {
                cycle
            };
            println!(
                "{:>10} {:>10} {:>10} {:>8}  {}",
                req,
                cfg.ack_delay,
                coupling,
                analysis.cycle_time().as_f64(),
                shown
            );
        }
    }

    // Slack analysis: how far can each arc's delay stretch before the
    // cycle time degrades? Zero-slack arcs are the bottlenecks.
    let cfg = PipelineConfig::default();
    let sg = handshake_pipeline(4, cfg);
    let slack = SlackAnalysis::run(&sg)?;
    println!("\nslack analysis (τ = {}):", slack.cycle_time());
    let critical = slack.critical_arcs(1e-9);
    println!(
        "  {} of {} arcs are timing-critical (zero slack):",
        critical.len(),
        sg.arc_count()
    );
    for &a in critical.iter().take(8) {
        let arc = sg.arc(a);
        println!("    {} -> {}", sg.label(arc.src()), sg.label(arc.dst()));
    }
    // The loosest arcs — places where a slower, smaller gate would do.
    let mut loose: Vec<(f64, String)> = sg
        .arc_ids()
        .filter_map(|a| {
            slack.slack(a).map(|s| {
                let arc = sg.arc(a);
                (
                    s,
                    format!("{} -> {}", sg.label(arc.src()), sg.label(arc.dst())),
                )
            })
        })
        .collect();
    loose.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    println!("  loosest arcs:");
    for (s, arc) in loose.iter().take(5) {
        println!("    {arc:<16} slack {s:.3}");
    }
    Ok(())
}
