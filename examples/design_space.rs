//! Design-space exploration with the analyzer in the loop: sweep the gate
//! delays of a handshake pipeline, watch the critical cycle move between
//! the stage logic and the inter-stage coupling, and quantify per-arc
//! slack — the "bottleneck hunting" workflow the paper's introduction
//! motivates.
//!
//! The sweep runs through **one** [`AnalysisSession`]: the pipeline is
//! built once, every grid point is a batch of delay edits, and only the
//! border simulations whose cones see an edited arc re-run. Each row is
//! cross-checked against a from-scratch `CycleTimeAnalysis::run_in`
//! (itself reusing a single `AnalysisArena`, so even the checking loop
//! is allocation-free after warm-up) — bit-identical, every time.
//!
//! ```sh
//! cargo run --example design_space
//! ```

use tsg::core::analysis::session::{AnalysisSession, DelayEdit};
use tsg::core::analysis::slack::SlackAnalysis;
use tsg::core::analysis::wide::AnalysisArena;
use tsg::core::analysis::CycleTimeAnalysis;
use tsg::core::{ArcId, SignalGraph};
use tsg::gen::{handshake_pipeline, PipelineConfig};

/// Which delay knob of the pipeline generator an arc belongs to.
#[derive(Clone, Copy, PartialEq)]
enum Knob {
    /// Intra-stage request-side logic (`r{k}± -> a{k}±`).
    Req,
    /// Intra-stage acknowledge-side logic (`a{k}± -> r{k}∓`).
    Ack,
    /// Inter-stage wiring and the environment loop.
    Coupling,
}

/// Parses a stage label like `r12+` into its kind letter and stage.
fn stage_of(label: &str) -> Option<(char, usize)> {
    let kind = label.chars().next()?;
    let digits: String = label[1..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok().map(|stage| (kind, stage))
}

fn knob_of(sg: &SignalGraph, a: ArcId) -> Knob {
    let arc = sg.arc(a);
    let src = sg.label(arc.src()).to_string();
    let dst = sg.label(arc.dst()).to_string();
    match (stage_of(&src), stage_of(&dst)) {
        (Some(('r', i)), Some(('a', j))) if i == j => Knob::Req,
        (Some(('a', i)), Some(('r', j))) if i == j => Knob::Ack,
        _ => Knob::Coupling,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One pipeline, one session, one verification arena for the whole
    // sweep.
    let stages = 8;
    let mut session = AnalysisSession::open(handshake_pipeline(stages, PipelineConfig::default()))?;
    let knobs: Vec<Knob> = session
        .graph()
        .arc_ids()
        .map(|a| knob_of(session.graph(), a))
        .collect();
    let mut arena = AnalysisArena::new();

    println!(
        "{:>10} {:>10} {:>10} {:>8} {:>10}  critical cycle",
        "req_delay", "ack_delay", "coupling", "tau", "rows"
    );
    for req in [1.0, 2.0, 4.0] {
        for coupling in [1.0, 4.0, 8.0] {
            let cfg = PipelineConfig {
                req_delay: req,
                ack_delay: 1.0,
                coupling_delay: coupling,
            };
            // One edit batch per grid point: every req/coupling arc to
            // its new delay (ack arcs keep the default).
            let edits: Vec<DelayEdit> = session
                .graph()
                .arc_ids()
                .filter_map(|a| match knobs[a.index()] {
                    Knob::Req => Some(DelayEdit {
                        arc: a,
                        delay: cfg.req_delay,
                    }),
                    Knob::Coupling => Some(DelayEdit {
                        arc: a,
                        delay: cfg.coupling_delay,
                    }),
                    Knob::Ack => None,
                })
                .collect();
            let delta = session.edit_delays(&edits)?;

            // Verify against a from-scratch analysis of an equivalently
            // configured pipeline, through the arena-reusing entry point.
            let fresh = handshake_pipeline(stages, cfg);
            let scratch = CycleTimeAnalysis::run_in(&fresh, None, &mut arena)?;
            assert_eq!(
                session.analysis().cycle_time().as_f64().to_bits(),
                scratch.cycle_time().as_f64().to_bits(),
                "incremental sweep diverged at req={req} coupling={coupling}"
            );
            assert_eq!(
                session.analysis().critical_cycle(),
                scratch.critical_cycle()
            );

            let cycle = session
                .graph()
                .display_path(session.analysis().critical_cycle());
            let shown = if cycle.len() > 44 {
                format!("{}…", &cycle[..44])
            } else {
                cycle
            };
            println!(
                "{:>10} {:>10} {:>10} {:>8} {:>6}/{:<3}  {}",
                req,
                cfg.ack_delay,
                coupling,
                session.analysis().cycle_time().as_f64(),
                delta.rows,
                delta.rows_total,
                shown
            );
        }
    }
    println!(
        "all 9 grid points bit-identical to from-scratch analyses \
         ({} edit batches on one warm session)",
        session.edits_applied()
    );

    // Slack analysis: how far can each arc's delay stretch before the
    // cycle time degrades? Zero-slack arcs are the bottlenecks.
    let cfg = PipelineConfig::default();
    let sg = handshake_pipeline(4, cfg);
    let slack = SlackAnalysis::run(&sg)?;
    println!("\nslack analysis (τ = {}):", slack.cycle_time());
    let critical = slack.critical_arcs(1e-9);
    println!(
        "  {} of {} arcs are timing-critical (zero slack):",
        critical.len(),
        sg.arc_count()
    );
    for &a in critical.iter().take(8) {
        let arc = sg.arc(a);
        println!("    {} -> {}", sg.label(arc.src()), sg.label(arc.dst()));
    }
    // The loosest arcs — places where a slower, smaller gate would do.
    let mut loose: Vec<(f64, String)> = sg
        .arc_ids()
        .filter_map(|a| {
            slack.slack(a).map(|s| {
                let arc = sg.arc(a);
                (
                    s,
                    format!("{} -> {}", sg.label(arc.src()), sg.label(arc.dst())),
                )
            })
        })
        .collect();
    loose.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    println!("  loosest arcs:");
    for (s, arc) in loose.iter().take(5) {
        println!("    {arc:<16} slack {s:.3}");
    }
    Ok(())
}
