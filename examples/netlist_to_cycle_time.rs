//! The full TRASPEC-style flow on a textual netlist: parse a `.ckt`
//! description, verify speed-independence, extract the Signal Graph, and
//! compare the paper's algorithm against every baseline.
//!
//! ```sh
//! cargo run --example netlist_to_cycle_time
//! ```

use tsg::baselines;
use tsg::circuit::parse::parse_ckt;
use tsg::core::analysis::CycleTimeAnalysis;
use tsg::extract::{explore, extract, ExtractOptions};

const CIRCUIT: &str = "\
# A three-stage Muller pipeline ring with non-uniform pin delays.
gate s0 c(s2:3, i0:1) = 0
gate s1 c(s0:2, i1:1) = 0
gate s2 c(s1:2, i2:1) = 1
gate i0 inv(s1:1) = 1
gate i1 inv(s2:1) = 0
gate i2 inv(s0:2) = 1
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = parse_ckt(CIRCUIT)?;
    println!(
        "parsed netlist: {} signals, {} gates",
        netlist.signal_count(),
        netlist.gate_count()
    );

    let report = explore(&netlist, 1_000_000);
    println!(
        "state exploration: {} states, semimodular: {}",
        report.states,
        report.is_semimodular()
    );
    for v in &report.violations {
        println!("  violation: {v}");
    }

    let sg = extract(&netlist, ExtractOptions::default())?;
    println!(
        "extracted TSG: {} events, {} arcs, {} border event(s)",
        sg.event_count(),
        sg.arc_count(),
        sg.border_events().len()
    );

    let analysis = CycleTimeAnalysis::run(&sg)?;
    println!("\npaper algorithm : τ = {}", analysis.cycle_time());
    println!(
        "critical cycle  : {}",
        sg.display_path(analysis.critical_cycle())
    );

    println!("\nbaseline cross-check:");
    println!(
        "  enumeration : {}",
        baselines::enumerate_cycle_time(&sg, 100_000)?
            .expect("cyclic")
            .as_f64()
    );
    println!(
        "  howard      : {}",
        baselines::howard_cycle_time(&sg).expect("cyclic").as_f64()
    );
    println!(
        "  karp        : {}",
        baselines::karp_cycle_time(&sg).expect("cyclic").as_f64()
    );
    println!(
        "  lawler      : {}",
        baselines::lawler_cycle_time(&sg, 60)
            .expect("cyclic")
            .as_f64()
    );
    println!(
        "  long-run sim: {}",
        baselines::longrun_estimate(&sg, 128).expect("cyclic")
    );
    Ok(())
}
