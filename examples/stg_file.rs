//! Working with Signal Transition Graph (`.g`) files: parse the embedded
//! examples, analyze them, and write one back out.
//!
//! ```sh
//! cargo run --example stg_file
//! ```

use tsg::core::analysis::CycleTimeAnalysis;
use tsg::stg::{
    parse_stg, write_stg, StgOptions, EXAMPLE_OSCILLATOR, EXAMPLE_PIPELINE_2PH, EXAMPLE_RING5,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (name, text) in [
        ("oscillator (Figure 2c, cyclic part)", EXAMPLE_OSCILLATOR),
        ("4-phase pipeline controller", EXAMPLE_PIPELINE_2PH),
        ("Muller ring 5 (Section VIII.D)", EXAMPLE_RING5),
    ] {
        let sg = parse_stg(text, StgOptions::default())?;
        let analysis = CycleTimeAnalysis::run(&sg)?;
        println!("{name}:");
        println!(
            "  {} events, {} arcs, {} border event(s)",
            sg.event_count(),
            sg.arc_count(),
            sg.border_events().len()
        );
        println!("  τ = {}", analysis.cycle_time());
        println!(
            "  critical cycle: {}",
            sg.display_path(analysis.critical_cycle())
        );
    }

    // Round-trip: serialise the oscillator back to `.g`.
    let sg = parse_stg(EXAMPLE_OSCILLATOR, StgOptions::default())?;
    let text = write_stg(&sg, "oscillator_roundtrip")?;
    println!("\nround-tripped .g file:\n{text}");
    let back = parse_stg(&text, StgOptions::default())?;
    assert_eq!(back.event_count(), sg.event_count());
    assert_eq!(back.arc_count(), sg.arc_count());
    Ok(())
}
