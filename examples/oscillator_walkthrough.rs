//! The paper's running example end to end: the Figure 1a circuit, from
//! gate-level netlist to cycle time, reproducing every intermediate
//! artefact (Figures 1b–1d, Examples 3–7, Section VIII.C).
//!
//! ```sh
//! cargo run --example oscillator_walkthrough
//! ```

use tsg::circuit::library;
use tsg::circuit::EventDrivenSim;
use tsg::core::analysis::diagram::{self, DiagramOptions};
use tsg::core::analysis::initiated::InitiatedSimulation;
use tsg::core::analysis::sim::TimingSimulation;
use tsg::core::analysis::CycleTimeAnalysis;
use tsg::extract::{explore, extract, ExtractOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The gate-level circuit (Figure 1a).
    let netlist = library::c_element_oscillator();
    println!(
        "circuit: {} signals, {} gates",
        netlist.signal_count(),
        netlist.gate_count()
    );

    // 2. Speed-independence check (the contract TRASPEC enforces).
    let report = explore(&netlist, 100_000);
    println!(
        "reachable states: {}, semimodular: {}",
        report.states,
        report.is_semimodular()
    );

    // 3. Extract the Timed Signal Graph (Figure 1b / 2c).
    let sg = extract(&netlist, ExtractOptions::default())?;
    println!(
        "\nextracted TSG: {} events, {} arcs",
        sg.event_count(),
        sg.arc_count()
    );

    // 4. Timing simulation (Example 3) and the Figure 1c diagram.
    let sim = TimingSimulation::run(&sg, 3);
    println!("\ntiming diagram (Figure 1c):");
    print!("{}", diagram::render(&sg, &sim, DiagramOptions::default()));

    // 5. The a+-initiated simulation (Figure 1d): δ = 10 immediately.
    let ap = sg.event_by_label("a+").expect("a+ exists");
    let initiated = InitiatedSimulation::run(&sg, ap, 3)?;
    println!("\na+-initiated diagram (Figure 1d):");
    print!(
        "{}",
        diagram::render_initiated(&sg, &initiated, DiagramOptions::default())
    );
    for (i, t, d) in initiated.distance_series() {
        println!("δ_a+0(a+_{i}) = {t}/{i} = {d}");
    }

    // 6. The cycle-time algorithm (Section VIII.C).
    let analysis = CycleTimeAnalysis::run(&sg)?;
    println!("\ncycle time τ = {}", analysis.cycle_time());
    println!(
        "critical cycle: {}",
        sg.display_path(analysis.critical_cycle())
    );

    // 7. Cross-validation: the event-driven gate-level simulator observes
    //    the same steady-state period.
    let mut des = EventDrivenSim::new(&netlist);
    let trace = des.run(500.0, 100_000)?;
    let a = netlist.signal("a").expect("signal a");
    let observed = EventDrivenSim::steady_period(&trace, a, true).expect("oscillates");
    println!("\nevent-driven simulation steady period of a+: {observed}");
    assert_eq!(observed, analysis.cycle_time().as_f64());
    Ok(())
}
