//! Parallel scenario sweeps on the shared simulation kernel: score a
//! whole family of candidate designs — here, rings with different token
//! budgets and a seed study of random live graphs — by fanning the
//! independent simulations out across threads with `BatchRunner`, then
//! dump the most interesting scenario as a VCD waveform.
//!
//! ```sh
//! cargo run --example batch_sweep
//! ```

use tsg::baselines;
use tsg::core::analysis::event_sim::EventSimulation;
use tsg::core::analysis::CycleTimeAnalysis;
use tsg::core::SignalGraph;
use tsg::gen::{random_live_tsg, ring, RandomTsgConfig};
use tsg::sim::{BatchRunner, TraceRecorder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A design sweep: how does a 48-event ring's throughput respond to
    //    its token budget? Each scenario is independent — perfect batch
    //    material.
    let rings: Vec<(usize, SignalGraph)> = (1..=12).map(|k| (k, ring(48, k, 2.0))).collect();
    let runner = BatchRunner::new();
    println!(
        "token sweep of ring(48, k, 2.0) on {} thread(s):",
        runner.threads()
    );
    let taus = runner.run(&rings, |(_, sg)| {
        CycleTimeAnalysis::run(sg)
            .expect("rings are live")
            .cycle_time()
            .as_f64()
    });
    for ((k, _), tau) in rings.iter().zip(&taus) {
        println!("  k={k:<3} τ = {tau}");
    }

    // 2. A seed study: long-run estimates over random live graphs, batched.
    let scenarios: Vec<SignalGraph> = (0..16)
        .map(|seed| random_live_tsg(seed, RandomTsgConfig::default()))
        .collect();
    let estimates = baselines::longrun_estimate_batch(&scenarios, 128);
    let exact: Vec<f64> = scenarios
        .iter()
        .map(|sg| CycleTimeAnalysis::run(sg).unwrap().cycle_time().as_f64())
        .collect();
    let agreeing = estimates
        .iter()
        .zip(&exact)
        .filter(|(est, tau)| est.is_some_and(|e| (e - **tau).abs() < **tau * 0.05 + 1e-9))
        .count();
    println!(
        "seed study: {agreeing}/{} long-run estimates within 5% of exact τ",
        scenarios.len()
    );

    // 3. Waveform of the slowest random scenario, via the kernel recorder.
    let (worst, _) = exact
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty");
    let sim = EventSimulation::run(&scenarios[worst], 4);
    let mut recorder = TraceRecorder::new("worst_case");
    sim.record_trace(&scenarios[worst], &mut recorder);
    let path = std::env::temp_dir().join("tsg-batch-sweep.vcd");
    recorder.dump_vcd(&path)?;
    println!(
        "slowest scenario (seed {worst}) waveform: {}",
        path.display()
    );
    Ok(())
}
