//! Quickstart: build a Timed Signal Graph and compute its cycle time.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tsg::core::analysis::CycleTimeAnalysis;
use tsg::core::SignalGraph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-stage self-timed loop: req rises, ack follows, req falls,
    // ack falls, and a token lets the cycle restart.
    let mut b = SignalGraph::builder();
    let req_p = b.event("req+");
    let ack_p = b.event("ack+");
    let req_m = b.event("req-");
    let ack_m = b.event("ack-");
    b.arc(req_p, ack_p, 4.0); // logic delay
    b.arc(ack_p, req_m, 1.0);
    b.arc(req_m, ack_m, 4.0);
    b.marked_arc(ack_m, req_p, 1.0); // the restart token
    let sg = b.build()?;

    let analysis = CycleTimeAnalysis::run(&sg)?;
    println!("events        : {}", sg.event_count());
    println!("border events : {}", analysis.border_events().len());
    println!("cycle time    : {}", analysis.cycle_time());
    println!(
        "critical cycle: {}",
        sg.display_path(analysis.critical_cycle())
    );

    assert_eq!(analysis.cycle_time().as_f64(), 10.0);
    Ok(())
}
