//! Section VIII.D: Muller rings of parametric size.
//!
//! Reproduces the paper's 5-stage table and then sweeps the ring size,
//! showing how the cycle time of a one-token ring grows with its length —
//! the classic "token needs three gate delays per stage, bubbles limit
//! throughput" effect.
//!
//! ```sh
//! cargo run --example muller_ring
//! ```

use tsg::circuit::library;
use tsg::core::analysis::initiated::InitiatedSimulation;
use tsg::core::analysis::CycleTimeAnalysis;
use tsg::extract::{extract, ExtractOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's instance: 5 stages, unit delays.
    let sg = extract(&library::muller_ring(5, 1.0), ExtractOptions::default())?;
    let borders: Vec<String> = sg
        .border_events()
        .iter()
        .map(|&e| sg.label(e).to_string())
        .collect();
    println!("ring of 5: border events {}", borders.join(", "));

    let s0 = sg.event_by_label("s0+").expect("s0+ exists");
    let sim = InitiatedSimulation::run(&sg, s0, 10)?;
    println!("i           : 1    2    3    4    5    6    7    8    9    10");
    print!("t_a0(a_i)   :");
    for i in 1..=10 {
        print!(" {:<4}", sim.time(s0, i).expect("reached"));
    }
    println!();
    print!("δ_a0(a_i)   :");
    for i in 1..=10 {
        print!(" {:<4.2}", sim.time(s0, i).expect("reached") / f64::from(i));
    }
    println!();
    let analysis = CycleTimeAnalysis::run(&sg)?;
    println!(
        "τ = {} over {} period(s) — paper: 20/3",
        analysis.cycle_time(),
        analysis.cycle_time().periods()
    );

    // Size sweep: cycle time of a one-token ring of n stages.
    println!("\nring size sweep (unit delays, one data token):");
    println!("{:>4} {:>10} {:>8} {:>8}", "n", "tau", "borders", "periods");
    for n in [3usize, 4, 5, 6, 8, 10, 12, 16] {
        let sg = extract(&library::muller_ring(n, 1.0), ExtractOptions::default())?;
        let a = CycleTimeAnalysis::run(&sg)?;
        println!(
            "{:>4} {:>10} {:>8} {:>8}",
            n,
            a.cycle_time().to_string(),
            sg.border_events().len(),
            a.cycle_time().periods()
        );
    }
    Ok(())
}
